package sample

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Sink consumes measurement records as they are produced. The campaign
// engine calls it from a single collector goroutine, so implementations
// need no locking. Close flushes buffered output; in this codebase
// Close means "flush", not "invalidate" — closing twice is harmless and
// a closed file sink may be reused by a later campaign.
type Sink interface {
	Ping(Sample) error
	Trace(TraceSample) error
	Close() error
}

// ErrClosed is returned by Bus.Ping/Trace after Close.
var ErrClosed = errors.New("sample: bus is closed")

// event is one queued delivery; isTrace selects the payload.
type event struct {
	ping    Sample
	trace   TraceSample
	isTrace bool
}

// Bus fans each record out to a set of sinks through a bounded buffer.
// The producer side (Ping/Trace) blocks once the buffer is full —
// backpressure, not unbounded queueing — and a single delivery
// goroutine hands records to every sink in order, preserving the
// single-writer contract each sink relies on.
//
// A sink that returns an error is degraded: the error is latched, the
// sink receives no further records, and the next Ping/Trace (and Close)
// report the error so the producer can react — the campaign collector
// responds by spilling the remainder to memory, exactly as it does for
// a direct sink failure. Healthy sinks keep receiving every record.
//
// Like any Sink, a Bus expects one producer: Ping, Trace and Close must
// be called from a single goroutine (the campaign collector already
// is); delivery to the sinks runs concurrently inside the bus.
type Bus struct {
	ch    chan event
	done  chan struct{}
	sinks []Sink
	dead  []bool // delivery goroutine only

	// Operational telemetry. highWater and stalls are written by the
	// single producer but read concurrently (Stats, metricsz scrapes);
	// dropped and degraded are written by the delivery goroutine.
	highWater atomic.Int64
	stalls    atomic.Uint64
	dropped   atomic.Uint64
	degraded  atomic.Int64

	// Interned instruments; always non-nil (a nil registry hands out
	// unregistered but working instruments).
	mStalls   *obs.Counter
	mDropped  *obs.Counter
	mHigh     *obs.Gauge
	mDegraded *obs.Gauge

	mu     sync.Mutex
	err    error // first sink error, latched
	closed bool
}

// DefaultBusBuffer is the bus capacity when BusOptions.Buffer is zero:
// deep enough to absorb sink latency jitter, small enough that a stuck
// sink stalls the campaign instead of eating the heap.
const DefaultBusBuffer = 1024

// BusOptions sizes a Bus.
type BusOptions struct {
	// Buffer is the bounded queue capacity (default DefaultBusBuffer).
	Buffer int
	// Obs registers the bus's instruments: queue depth (live, via
	// GaugeFunc), high-water mark, backpressure stalls, dropped
	// deliveries and degraded-sink count. Nil disables registration;
	// Stats still works.
	Obs *obs.Registry
}

// BusStats is the bus's delivery ledger, readable at any time (and
// surfaced in the campaign's data-quality report after Close).
type BusStats struct {
	// HighWater is the deepest buffer occupancy observed at enqueue: how
	// close the campaign came to blocking on its sinks.
	HighWater int
	// Stalls counts sends that found the buffer completely full and had
	// to block — actual backpressure events, not near misses.
	Stalls uint64
	// Dropped counts deliveries skipped because a sink had degraded: one
	// per (record, dead sink) pair. These records are the ones the
	// collector re-routes to its in-memory spill.
	Dropped uint64
	// Degraded is the number of sinks that have failed so far.
	Degraded int
}

// NewBus starts a bus over the given sinks. Close releases its delivery
// goroutine.
func NewBus(opts BusOptions, sinks ...Sink) *Bus {
	if opts.Buffer <= 0 {
		opts.Buffer = DefaultBusBuffer
	}
	b := &Bus{
		ch:        make(chan event, opts.Buffer),
		done:      make(chan struct{}),
		sinks:     sinks,
		dead:      make([]bool, len(sinks)),
		mStalls:   opts.Obs.Counter("bus_backpressure_stalls_total"),
		mDropped:  opts.Obs.Counter("bus_dropped_deliveries_total"),
		mHigh:     opts.Obs.Gauge("bus_queue_high_water"),
		mDegraded: opts.Obs.Gauge("bus_sinks_degraded"),
	}
	// Live queue depth: read at scrape time, replacing any previous
	// bus's callback so the newest bus owns the gauge.
	opts.Obs.GaugeFunc("bus_queue_depth", func() float64 { return float64(len(b.ch)) })
	//lint:ignore goroutineleak deliver ranges over b.ch and exits when Close closes it, signalling b.done
	go b.deliver()
	return b
}

func (b *Bus) deliver() {
	defer close(b.done)
	for ev := range b.ch {
		for i, s := range b.sinks {
			if b.dead[i] {
				b.dropped.Add(1)
				b.mDropped.Inc()
				continue
			}
			var err error
			if ev.isTrace {
				err = s.Trace(ev.trace)
			} else {
				err = s.Ping(ev.ping)
			}
			if err != nil {
				b.dead[i] = true
				b.degraded.Add(1)
				b.mDegraded.Add(1)
				b.latch(fmt.Errorf("sample: bus sink %d: %w", i, err))
			}
		}
	}
}

func (b *Bus) latch(err error) {
	b.mu.Lock()
	if b.err == nil {
		b.err = err
	}
	b.mu.Unlock()
}

// Err returns the first sink error observed so far (nil while all sinks
// are healthy).
func (b *Bus) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Stats returns the bus's delivery ledger so far. Safe to call
// concurrently with delivery, and after Close.
func (b *Bus) Stats() BusStats {
	return BusStats{
		HighWater: int(b.highWater.Load()),
		Stalls:    b.stalls.Load(),
		Dropped:   b.dropped.Load(),
		Degraded:  int(b.degraded.Load()),
	}
}

func (b *Bus) send(ev event) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	err := b.err
	b.mu.Unlock()
	if err != nil {
		return err
	}
	// Book occupancy including this event; the delivery goroutine drains
	// concurrently so this is a lower bound, which is the honest reading
	// for a high-water mark.
	if depth := int64(len(b.ch)) + 1; depth > b.highWater.Load() {
		b.highWater.Store(depth) // single producer: no racing writers
		b.mHigh.SetMax(depth)
	}
	select {
	case b.ch <- ev:
	default:
		// Buffer full: this send is a real backpressure stall.
		b.stalls.Add(1)
		b.mStalls.Inc()
		b.ch <- ev
	}
	return nil
}

// Ping implements Sink: it enqueues the sample for delivery to every
// healthy sink, blocking while the buffer is full. It returns any sink
// error latched so far (delivery is asynchronous, so an error surfaces
// on a later call than the record that caused it).
func (b *Bus) Ping(s Sample) error { return b.send(event{ping: s}) }

// Trace implements Sink; see Ping for the error contract.
func (b *Bus) Trace(t TraceSample) error { return b.send(event{trace: t, isTrace: true}) }

// Close drains the buffer, stops the delivery goroutine, closes every
// sink (flush semantics), and returns the first error any sink
// reported. Close is idempotent.
func (b *Bus) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return b.Err()
	}
	b.closed = true
	b.mu.Unlock()
	close(b.ch)
	<-b.done
	for i, s := range b.sinks {
		if err := s.Close(); err != nil && !b.dead[i] {
			b.dead[i] = true
			b.degraded.Add(1)
			b.mDegraded.Add(1)
			b.latch(fmt.Errorf("sample: closing bus sink %d: %w", i, err))
		}
	}
	return b.Err()
}
