package sample

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// memSink records everything it receives.
type memSink struct {
	mu     sync.Mutex
	pings  []Sample
	traces []TraceSample
	closed int
}

func (m *memSink) Ping(s Sample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pings = append(m.pings, s)
	return nil
}

func (m *memSink) Trace(t TraceSample) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.traces = append(m.traces, t)
	return nil
}

func (m *memSink) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed++
	return nil
}

func (m *memSink) counts() (int, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pings), len(m.traces)
}

// failSink fails every ping after the first n.
type failSink struct {
	memSink
	n int
}

var errBoom = errors.New("boom")

func (f *failSink) Ping(s Sample) error {
	np, _ := f.counts()
	if np >= f.n {
		return errBoom
	}
	return f.memSink.Ping(s)
}

func ping(i int) Sample {
	return Sample{VP: VantagePoint{ProbeID: "p"}, RTTms: float64(i), Cycle: i}
}

func TestBusFansOutInOrder(t *testing.T) {
	a, b := &memSink{}, &memSink{}
	bus := NewBus(BusOptions{Buffer: 4}, a, b)
	for i := 0; i < 100; i++ {
		if err := bus.Ping(ping(i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			if err := bus.Trace(TraceSample{Cycle: i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]*memSink{"a": a, "b": b} {
		np, nt := s.counts()
		if np != 100 || nt != 10 {
			t.Fatalf("sink %s: got %d pings, %d traces, want 100, 10", name, np, nt)
		}
		for i, p := range s.pings {
			if p.Cycle != i {
				t.Fatalf("sink %s: out-of-order delivery at %d: %+v", name, i, p)
			}
		}
		if s.closed == 0 {
			t.Fatalf("sink %s never closed", name)
		}
	}
}

func TestBusDegradesOneSinkKeepsOthers(t *testing.T) {
	bad := &failSink{n: 3}
	good := &memSink{}
	bus := NewBus(BusOptions{Buffer: 1}, bad, good)
	sawErr := false
	for i := 0; i < 50; i++ {
		if err := bus.Ping(ping(i)); err != nil {
			sawErr = true
			break
		}
	}
	err := bus.Close()
	if !sawErr && err == nil {
		t.Fatal("sink failure never surfaced")
	}
	if !errors.Is(err, errBoom) && err != nil {
		// Close must report the latched error when Ping did not.
		t.Fatalf("Close() = %v, want wrapped %v", err, errBoom)
	}
	np, _ := bad.counts()
	if np != 3 {
		t.Fatalf("degraded sink got %d pings, want 3", np)
	}
	gp, _ := good.counts()
	if gp < 3 {
		t.Fatalf("healthy sink got %d pings, want every delivered record", gp)
	}
}

func TestBusCloseIdempotentAndRejectsAfterClose(t *testing.T) {
	s := &memSink{}
	bus := NewBus(BusOptions{}, s)
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if err := bus.Close(); err != nil {
		t.Fatalf("second Close() = %v", err)
	}
	if err := bus.Ping(ping(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ping after Close = %v, want ErrClosed", err)
	}
	if err := bus.Trace(TraceSample{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Trace after Close = %v, want ErrClosed", err)
	}
	if s.closed != 1 {
		t.Fatalf("sink closed %d times, want 1", s.closed)
	}
}

// blockSink holds every delivery until released, so the producer side
// has to fill the buffer and stall.
type blockSink struct {
	memSink
	gate chan struct{}
}

func (b *blockSink) Ping(s Sample) error {
	<-b.gate
	return b.memSink.Ping(s)
}

func TestBusStatsHighWaterAndStalls(t *testing.T) {
	blocked := &blockSink{gate: make(chan struct{})}
	reg := obs.NewRegistry()
	bus := NewBus(BusOptions{Buffer: 4, Obs: reg}, blocked)
	// Fill the buffer while delivery is gated: the buffer holds 4 and
	// one event sits in the delivery goroutine, so 6 sends guarantee at
	// least one full-buffer stall. Release the gate from a helper after
	// the producer provably blocks.
	go func() {
		for i := 0; i < 20; i++ {
			blocked.gate <- struct{}{}
		}
	}()
	for i := 0; i < 6; i++ {
		if err := bus.Ping(ping(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	st := bus.Stats()
	if st.HighWater < 2 || st.HighWater > 5 {
		t.Errorf("high-water = %d, want full-ish buffer (2..5)", st.HighWater)
	}
	if st.Stalls == 0 {
		t.Error("no backpressure stalls recorded against a gated sink")
	}
	if st.Dropped != 0 || st.Degraded != 0 {
		t.Errorf("healthy run recorded dropped=%d degraded=%d", st.Dropped, st.Degraded)
	}
	// The registry mirrors the ledger.
	var sb strings.Builder
	if err := reg.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "bus_queue_high_water") ||
		!strings.Contains(sb.String(), "bus_backpressure_stalls_total") {
		t.Errorf("bus instruments missing from exposition:\n%s", sb.String())
	}
}

func TestBusStatsDroppedAfterDegradation(t *testing.T) {
	bad := &failSink{n: 2}
	good := &memSink{}
	bus := NewBus(BusOptions{Buffer: 2}, bad, good)
	const total = 40
	delivered := 0
	for i := 0; i < total; i++ {
		if err := bus.Ping(ping(i)); err != nil {
			break
		}
		delivered++
	}
	bus.Close()
	st := bus.Stats()
	if st.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", st.Degraded)
	}
	// Every record delivered after the failing sink's third (the one
	// that kills it) is a drop for that sink: delivered - 3 in total.
	gp, _ := good.counts()
	if want := uint64(gp - 3); st.Dropped != want {
		t.Errorf("dropped = %d, want %d (healthy sink saw %d, dead sink took 3)",
			st.Dropped, want, gp)
	}
}

func TestSliceSourceAndDrain(t *testing.T) {
	xs := []Sample{ping(0), ping(1), ping(2)}
	var got []Sample
	if err := Drain(NewSliceSource(xs), func(s Sample) error {
		got = append(got, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Cycle != 2 {
		t.Fatalf("drained %+v", got)
	}
	src := NewSliceSource(nil)
	if _, ok, err := src.Next(); ok || err != nil {
		t.Fatalf("empty source Next = %v, %v", ok, err)
	}
	ts := NewSliceTraceSource([]TraceSample{{Cycle: 7}})
	n := 0
	if err := DrainTraces(ts, func(t TraceSample) error { n++; return nil }); err != nil || n != 1 {
		t.Fatalf("DrainTraces n=%d err=%v", n, err)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	for _, p := range []Protocol{TCP, ICMP} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: %v, %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("udp"); err == nil {
		t.Fatal("udp should not parse")
	}
}

func TestTraceSampleRTTAndReached(t *testing.T) {
	tr := TraceSample{Hops: []Hop{
		{TTL: 1, RTTms: 5, Responded: true},
		{TTL: 2, RTTms: 9, Responded: false},
	}}
	if got := tr.RTTms(); got != 5 {
		t.Fatalf("RTTms = %v, want 5", got)
	}
	if tr.Reached() {
		t.Fatal("unreached trace reported Reached")
	}
	if (&TraceSample{}).RTTms() != 0 {
		t.Fatal("empty trace RTT should be 0")
	}
}
