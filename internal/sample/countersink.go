package sample

import "repro/internal/obs"

// CounterSink mirrors the record stream onto two registry counters and
// drops the records. Its job is visibility, not storage: riding as a
// second sink it puts live stream_pings_total / stream_traces_total on
// /v1/metricsz while a campaign runs — and, because a multi-sink run
// engages the fan-out Bus, it exercises the same bounded-buffer
// backpressure spine a multi-destination export uses. `cloudy serve`
// attaches one to the initial build and to every live re-seal.
type CounterSink struct {
	Pings  *obs.Counter
	Traces *obs.Counter
}

// NewCounterSink interns the stream counters on reg (nil-safe, like
// every obs constructor).
func NewCounterSink(reg *obs.Registry) *CounterSink {
	return &CounterSink{
		Pings:  reg.Counter("stream_pings_total"),
		Traces: reg.Counter("stream_traces_total"),
	}
}

// Ping implements Sink.
func (c *CounterSink) Ping(Sample) error { c.Pings.Inc(); return nil }

// Trace implements Sink.
func (c *CounterSink) Trace(TraceSample) error { c.Traces.Inc(); return nil }

// Close implements Sink; counting needs no flush.
func (c *CounterSink) Close() error { return nil }
