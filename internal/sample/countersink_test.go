package sample

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// CounterSink counts every record, flushes as a no-op, and keeps
// counting when reused by a later campaign (Close means flush here).
func TestCounterSink(t *testing.T) {
	reg := obs.NewRegistry()
	cs := NewCounterSink(reg)
	for i := 0; i < 5; i++ {
		if err := cs.Ping(Sample{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cs.Trace(TraceSample{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cs.Ping(Sample{}); err != nil {
		t.Errorf("CounterSink unusable after Close: %v", err)
	}
	if got := reg.Counter("stream_pings_total").Load(); got != 6 {
		t.Errorf("stream_pings_total = %d, want 6", got)
	}
	if got := reg.Counter("stream_traces_total").Load(); got != 3 {
		t.Errorf("stream_traces_total = %d, want 3", got)
	}
	var sb strings.Builder
	reg.WriteMetrics(&sb)
	if !strings.Contains(sb.String(), "stream_pings_total 6") {
		t.Errorf("metrics exposition missing stream counter:\n%s", sb.String())
	}

	// As a Bus member it receives every record like any other sink.
	reg2 := obs.NewRegistry()
	bus := NewBus(BusOptions{Buffer: 4}, NewCounterSink(reg2))
	for i := 0; i < 10; i++ {
		if err := bus.Ping(Sample{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := bus.Close(); err != nil {
		t.Fatal(err)
	}
	if got := reg2.Counter("stream_pings_total").Load(); got != 10 {
		t.Errorf("bus-fed CounterSink saw %d pings, want 10", got)
	}
}
