// Package sample is the domain layer of the measurement spine: the
// unified record model every layer above speaks — the campaign engine
// producing records, the codecs streaming them to and from disk, the
// sharded store ingesting them, and the figure analyses reducing them.
//
// The package also defines the two streaming primitives the spine is
// built from:
//
//   - Source: a pull cursor (Next-style) over samples, so analyses and
//     store builds consume records one at a time in constant memory
//     instead of materializing slices first.
//   - Sink and Bus: the push side. A Bus fans every record out to a set
//     of sinks through a bounded buffer, so a running campaign can feed
//     the export files, an in-memory store and an incremental columnar
//     build at once, with backpressure instead of unbounded queueing.
//
// repro/internal/dataset re-exports these types under its historical
// names (PingRecord, TracerouteRecord, ...) via type aliases, so the
// two packages share one model rather than converting between two.
package sample

import (
	"fmt"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
)

// Protocol is the measurement protocol. The campaign runs TCP pings and
// ICMP traceroutes in parallel (§3.3).
type Protocol uint8

// Protocols.
const (
	TCP Protocol = iota
	ICMP
)

// String returns the protocol name.
func (p Protocol) String() string {
	if p == ICMP {
		return "icmp"
	}
	return "tcp"
}

// ParseProtocol is the inverse of String.
func ParseProtocol(s string) (Protocol, error) {
	switch s {
	case "tcp":
		return TCP, nil
	case "icmp":
		return ICMP, nil
	}
	return 0, fmt.Errorf("sample: unknown protocol %q", s)
}

// VantagePoint captures the probe-side fields every record carries.
type VantagePoint struct {
	ProbeID   string
	Platform  string // "speedchecker" or "atlas"
	Country   string
	Continent geo.Continent
	ISP       asn.Number
	Access    lastmile.Access
}

// Target captures the endpoint-side fields.
type Target struct {
	Region    string // region ID
	Provider  string // provider code
	Country   string
	Continent geo.Continent
	IP        netaddr.IP
}

// Sample is one round-trip measurement.
type Sample struct {
	VP       VantagePoint
	Target   Target
	Protocol Protocol
	RTTms    float64
	// Cycle is the measurement cycle index (the campaign cycles through
	// all countries roughly every two weeks, §3.3).
	Cycle int
	// VTime is the campaign-relative virtual timestamp in milliseconds:
	// the cycle start plus the per-country sweep phase (VTimeOf). It is
	// derived, never read from a wall clock, so replays reproduce it
	// bit-identically.
	VTime int64
}

// Hop is one traceroute hop as captured on the wire: the pipeline adds
// AS attribution later.
type Hop struct {
	TTL       int
	IP        netaddr.IP
	RTTms     float64
	Responded bool
}

// TraceSample is one ICMP traceroute.
type TraceSample struct {
	VP     VantagePoint
	Target Target
	Hops   []Hop
	Cycle  int
	// VTime is the campaign-relative virtual timestamp in milliseconds
	// (see Sample.VTime).
	VTime int64
}

// RTTms returns the end-to-end round trip of the traceroute — the RTT
// reported by the final responding hop — or 0 when the trace never
// reached a responder.
func (t *TraceSample) RTTms() float64 {
	for i := len(t.Hops) - 1; i >= 0; i-- {
		if t.Hops[i].Responded {
			return t.Hops[i].RTTms
		}
	}
	return 0
}

// Reached reports whether the trace reached the target address.
func (t *TraceSample) Reached() bool {
	n := len(t.Hops)
	return n > 0 && t.Hops[n-1].Responded && t.Hops[n-1].IP == t.Target.IP
}
