package sample

// Source is a pull cursor over ping samples. Next returns the next
// sample and true, or the zero Sample and false once the stream is
// exhausted or fails; a non-nil error is terminal and every later call
// must keep returning it. The Next style (rather than a callback) lets
// a consumer own the loop — the single-pass analysis core and the
// incremental store build both drain a Source in constant memory.
type Source interface {
	Next() (Sample, bool, error)
}

// TraceSource is the traceroute counterpart of Source.
type TraceSource interface {
	Next() (TraceSample, bool, error)
}

// SliceSource cursors over an in-memory slice — the adapter that lets
// batch callers drive the streaming core.
type SliceSource struct {
	xs []Sample
	i  int
}

// NewSliceSource wraps xs without copying; the slice must not be
// mutated while the cursor is live.
func NewSliceSource(xs []Sample) *SliceSource { return &SliceSource{xs: xs} }

// Next implements Source.
func (s *SliceSource) Next() (Sample, bool, error) {
	if s.i >= len(s.xs) {
		return Sample{}, false, nil
	}
	s.i++
	return s.xs[s.i-1], true, nil
}

// SliceTraceSource cursors over an in-memory traceroute slice.
type SliceTraceSource struct {
	xs []TraceSample
	i  int
}

// NewSliceTraceSource wraps xs without copying.
func NewSliceTraceSource(xs []TraceSample) *SliceTraceSource {
	return &SliceTraceSource{xs: xs}
}

// Next implements TraceSource.
func (s *SliceTraceSource) Next() (TraceSample, bool, error) {
	if s.i >= len(s.xs) {
		return TraceSample{}, false, nil
	}
	s.i++
	return s.xs[s.i-1], true, nil
}

// Drain pumps every sample of src into fn, stopping at the first error
// from either side.
func Drain(src Source, fn func(Sample) error) error {
	for {
		s, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(s); err != nil {
			return err
		}
	}
}

// DrainTraces pumps every traceroute of src into fn, stopping at the
// first error from either side.
func DrainTraces(src TraceSource, fn func(TraceSample) error) error {
	for {
		t, ok, err := src.Next()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := fn(t); err != nil {
			return err
		}
	}
}
