// The virtual timeline. The paper's campaign is six months of
// bi-weekly country sweeps (§3.3); this repo models that as an integer
// cycle axis plus a derived millisecond timestamp. Both are pure
// functions of the record's identity — no layer ever reads a wall
// clock to stamp a record — so a replayed window reproduces the exact
// same timeline.
package sample

import "hash/fnv"

// CycleMillis is the virtual duration of one campaign cycle: the
// paper's bi-weekly sweep, two weeks in milliseconds.
const CycleMillis int64 = 14 * 24 * 3600 * 1000

// traceCycleOffset decorates the cycle of the second traceroute a task
// fires (the §3.3 "both directions" pair): the decorated cycle is
// campaignCycle + traceCycleOffset. CampaignCycle strips it.
const traceCycleOffset = 1 << 20

// CampaignCycle normalizes a possibly-decorated cycle index back onto
// the campaign time axis. Cycles below the decoration offset pass
// through unchanged.
func CampaignCycle(c int) int {
	if c >= traceCycleOffset {
		return c - traceCycleOffset
	}
	return c
}

// DecorateTraceCycle marks the second traceroute of a task pair. The
// inverse is CampaignCycle.
func DecorateTraceCycle(c int) int { return c + traceCycleOffset }

// VTimeOf derives the virtual timestamp of a measurement: the start of
// its (normalized) cycle plus a deterministic per-country phase inside
// the cycle, modelling the sweep order in which the campaign visits
// countries. The phase is a hash of the country code, so every record
// from one country lands at the same offset in every cycle — exactly
// what a bi-weekly sweep schedule produces.
func VTimeOf(cycle int, country string) int64 {
	h := fnv.New64a()
	h.Write([]byte(country))
	phase := int64(h.Sum64() % uint64(CycleMillis))
	return int64(CampaignCycle(cycle))*CycleMillis + phase
}

// Window is a half-open cycle interval [From, To). The zero value (and
// any window with To <= 0) is unbounded above; From <= 0 is unbounded
// below — so Window{} selects the whole campaign.
type Window struct {
	From int
	To   int
}

// All reports whether the window imposes no constraint.
func (w Window) All() bool { return w.From <= 0 && w.To <= 0 }

// Contains reports whether the (normalized) cycle falls inside the
// window.
func (w Window) Contains(cycle int) bool {
	c := CampaignCycle(cycle)
	if w.From > 0 && c < w.From {
		return false
	}
	if w.To > 0 && c >= w.To {
		return false
	}
	return true
}

// Overlaps reports whether any cycle in [lo, hi] falls inside the
// window — the zone-map pruning test the store runs per partition.
func (w Window) Overlaps(lo, hi int) bool {
	if w.From > 0 && hi < w.From {
		return false
	}
	if w.To > 0 && lo >= w.To {
		return false
	}
	return true
}

// OverlapsWindow reports whether two windows share at least one cycle.
func (w Window) OverlapsWindow(o Window) bool {
	if w.To > 0 && o.From > 0 && o.From >= w.To {
		return false
	}
	if o.To > 0 && w.From > 0 && w.From >= o.To {
		return false
	}
	return true
}
