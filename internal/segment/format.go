// Package segment implements the on-disk columnar format for sealed
// measurement stores. A store (internal/store) serializes into a
// directory of segment files — one meta file plus one file per shard —
// and reopens through a read-only mmap so a multi-month campaign
// serves figure queries straight from page cache without rebuilding
// in-memory vectors.
//
// Every file starts with the "CSEG"+version preamble and then carries
// length-prefixed frames in the internal/wirecodec shape: uvarint
// payload length, payload, CRC32-Castagnoli of the payload. A frame's
// payload is one block — a kind byte followed by the kind-specific
// body. Shard files end with a footer block indexing every other
// block (kind, group identity, time partition, row count, cycle and
// RTT zone maps, offset, length) and a fixed 16-byte tail locating
// the footer, so a reader maps the file, reads the tail, parses the
// footer and dictionary, and touches data blocks only when a query
// needs them; blocks whose zone map misses the query window are
// pruned without faulting their pages in.
//
// Column blocks hold one group's RTT and cycle columns (≤ 4096 rows
// per block): RTTs as first-value-raw + uvarint float-bit deltas
// (group vectors are sorted ascending, so bit patterns of positive
// floats increase monotonically), cycles as zigzag varint deltas —
// the same primitives internal/wirecodec frames use on the wire.
// Sketch blocks hold one group×partition t-digest (internal/sketch).
// The format is deterministic end to end: the same sealed store
// always writes byte-identical segment files.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/wirecodec"
)

// Magic begins every segment file, followed by FormatVersion.
const Magic = "CSEG"

// FormatVersion is the format generation; readers reject others.
const FormatVersion = 1

// tailMagic ends a shard file; the 16-byte tail is
// [8B footer offset LE][4B CRC32C of those 8 bytes][tailMagic].
const tailMagic = "GESC"

const tailSize = 16

// MaxBlockRows caps one column block so a straddled window filters at
// block granularity and a point query decodes at most this many rows
// per block touched.
const MaxBlockRows = 4096

// maxDictStrings and maxDictStringLen bound dictionary parsing against
// hostile footers.
const (
	maxDictStrings   = 1 << 20
	maxDictStringLen = 1 << 16
)

// BlockKind tags a frame payload. The constant group is exhaustively
// switched by readers; the cloudyvet frameexhaustive analyzer enforces
// that every switch over BlockKind either covers all kinds or handles
// the rest in a non-empty default.
type BlockKind uint8

const (
	// BlockMeta carries the store-level metadata (shard/partition/cycle
	// counts, partition windows, per-shard summary moments).
	BlockMeta BlockKind = 1 + iota
	// BlockDict carries a shard's string dictionary (platforms and
	// group names), id-ordered, ids 1-based.
	BlockDict
	// BlockColumn carries one slice of a group's RTT+cycle columns.
	BlockColumn
	// BlockSketch carries one group×partition quantile sketch.
	BlockSketch
	// BlockPeering carries one partition's interconnection tallies.
	BlockPeering
	// BlockFooter carries a shard file's block index and zone maps.
	BlockFooter
)

// String names the kind for diagnostics.
func (k BlockKind) String() string {
	switch k {
	case BlockMeta:
		return "meta"
	case BlockDict:
		return "dict"
	case BlockColumn:
		return "column"
	case BlockSketch:
		return "sketch"
	case BlockPeering:
		return "peering"
	case BlockFooter:
		return "footer"
	default:
		return fmt.Sprintf("BlockKind(%d)", uint8(k))
	}
}

// Format errors. All corruption detected while parsing or decoding
// wraps ErrCorrupt; the specific sentinels let tests and the fuzz
// harness distinguish failure classes.
var (
	ErrCorrupt   = errors.New("segment: corrupt")
	ErrMagic     = fmt.Errorf("%w: bad magic", ErrCorrupt)
	ErrVersion   = fmt.Errorf("%w: unsupported version", ErrCorrupt)
	ErrCRC       = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	ErrTruncated = fmt.Errorf("%w: truncated", ErrCorrupt)
	// ErrZoneMap marks a block whose decoded rows contradict the
	// footer's zone map — the footer promised a cycle or RTT range the
	// data escapes, so pruning decisions based on it would be wrong.
	ErrZoneMap = fmt.Errorf("%w: zone map contradicts block data", ErrCorrupt)
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func crc32Of(b []byte) uint32 { return crc32.Checksum(b, castagnoli) }

// appendFrame appends one framed block: uvarint payload length,
// payload (kind byte + body), CRC32C of the payload.
func appendFrame(dst []byte, kind BlockKind, body []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(body))+1)
	dst = append(dst, byte(kind))
	dst = append(dst, body...)
	crc := crc32.Update(0, castagnoli, dst[len(dst)-len(body)-1:])
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// frameAt reads the framed block starting at off, verifying bounds and
// CRC, and returns the kind, the body, and the offset one past the
// frame.
func frameAt(data []byte, off int) (BlockKind, []byte, int, error) {
	if off < 0 || off >= len(data) {
		return 0, nil, 0, fmt.Errorf("%w: frame offset %d out of range", ErrTruncated, off)
	}
	length, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return 0, nil, 0, fmt.Errorf("%w: frame length varint", ErrTruncated)
	}
	if length == 0 || length > wirecodec.MaxFrame {
		return 0, nil, 0, fmt.Errorf("%w: frame length %d", ErrCorrupt, length)
	}
	start := off + n
	end := start + int(length)
	if end+4 > len(data) || end < start {
		return 0, nil, 0, fmt.Errorf("%w: frame body", ErrTruncated)
	}
	payload := data[start:end]
	want := binary.LittleEndian.Uint32(data[end:])
	if crc32.Checksum(payload, castagnoli) != want {
		return 0, nil, 0, ErrCRC
	}
	return BlockKind(payload[0]), payload[1:], end + 4, nil
}

// checkPreamble validates the file preamble and returns the offset of
// the first frame.
func checkPreamble(data []byte) (int, error) {
	if len(data) < len(Magic)+1 {
		return 0, ErrTruncated
	}
	if string(data[:len(Magic)]) != Magic {
		return 0, ErrMagic
	}
	if data[len(Magic)] != FormatVersion {
		return 0, fmt.Errorf("%w: %d", ErrVersion, data[len(Magic)])
	}
	return len(Magic) + 1, nil
}

// readUvarint consumes one uvarint from b.
func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: varint", ErrTruncated)
	}
	return v, b[n:], nil
}

// readZigzag consumes one zigzag-coded signed varint from b.
func readZigzag(b []byte) (int64, []byte, error) {
	u, rest, err := readUvarint(b)
	if err != nil {
		return 0, nil, err
	}
	return wirecodec.Unzigzag(u), rest, nil
}

// readString consumes one length-prefixed string from b.
func readString(b []byte) (string, []byte, error) {
	n, rest, err := readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if n > maxDictStringLen {
		return "", nil, fmt.Errorf("%w: string length %d", ErrCorrupt, n)
	}
	if uint64(len(rest)) < n {
		return "", nil, fmt.Errorf("%w: string body", ErrTruncated)
	}
	return string(rest[:n]), rest[n:], nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, wirecodec.Zigzag(v))
}

func readFloatBits(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, fmt.Errorf("%w: float bits", ErrTruncated)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

func appendFloatBits(dst []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
}
