package segment

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the shard and meta
// parsers — truncations, bit flips, CRC forgeries and zone-map lies
// all originate as byte mutations of the seeds below. The contract is
// the same as FuzzWireDecode's: corrupt input errors, never panics,
// and never allocates unboundedly.
func FuzzSegmentDecode(f *testing.F) {
	st := buildStore(f, 2, 2, 8, 2)
	dir := f.TempDir()
	if err := Write(dir, st); err != nil {
		f.Fatal(err)
	}
	for _, name := range []string{MetaFile, ShardFile(0), ShardFile(1)} {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(Magic))
	f.Add([]byte{})
	tiny := newShardWriter(1)
	tiny.setPartition(0, 1, 0, 0)
	tiny.addGroup(0, 0, "speedchecker", "DE", []float64{1}, []int32{0})
	f.Add(tiny.finish())

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := CheckShard(data); err == nil {
			// A structurally valid image must stay valid on re-check
			// (parsing is deterministic and side-effect free).
			if err2 := CheckShard(data); err2 != nil {
				t.Fatalf("second CheckShard disagreed: %v", err2)
			}
		}
		_ = CheckMeta(data)
	})
}
