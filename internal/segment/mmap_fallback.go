//go:build !unix

package segment

import "os"

// mapFile reads the whole file on platforms without mmap support; the
// reader behaves identically, just without the page-cache laziness.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
