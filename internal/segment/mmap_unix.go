//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned close function
// unmaps; the file descriptor is closed immediately (the mapping keeps
// the pages alive). Serving from the mapping means a query's working
// set is whatever blocks it touches — the kernel pages them in on
// demand and can evict them under pressure, so resident memory stays
// flat as the store grows.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
