package segment

import (
	"math"
	"sort"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/store"
)

// The Reader serves the same figure-query surface as *store.Store
// (the serve.Querier contract). Two paths exist:
//
// Exact: decode the column blocks the window and zone maps fail to
// prune, filter straddled blocks row by row, and merge each group's
// sorted vectors — the reconstructed per-group vectors carry exactly
// the sealed store's multisets, so every figure function receives
// bit-identical input and returns bit-identical output.
//
// Sketch (default, unless Options.Exact): merge each group's
// per-shard, per-partition t-digests in canonical order (shard
// ascending, partition ascending) and answer quantile-shaped figures
// from the merged digest. Valid only when the query window is
// partition-aligned — every non-empty partition overlapping the
// window must be fully inside it — otherwise rows would need
// cycle-level filtering that a sketch cannot do, and the query falls
// back to the exact path.

// Summary returns the reconstructed store summary; bit-identical to
// the sealed store's.
func (r *Reader) Summary() store.Summary { return r.summary }

// gatherExact reconstructs the per-name merged sorted vectors for one
// dimension×platform inside the window — the segment counterpart of
// the store's shard fan-out.
func (r *Reader) gatherExact(dim store.Dim, platform string, w store.Window) map[string][]float64 {
	parts := map[string][][]float64{}
	for _, ss := range r.shards {
		for _, k := range ss.keys {
			if k.dim != dim || k.platform != platform {
				continue
			}
			for _, vec := range r.groupVectors(ss, ss.groups[k], w) {
				parts[k.name] = append(parts[k.name], vec)
			}
		}
	}
	out := make(map[string][]float64, len(parts))
	for name, vecs := range parts {
		if merged := mergeSorted(vecs); len(merged) > 0 {
			out[name] = merged
		}
	}
	return out
}

// groupVectors decodes one group's window-surviving column blocks into
// per-partition sorted vectors.
func (r *Reader) groupVectors(ss *shardSeg, g *groupBlocks, w store.Window) [][]float64 {
	var out [][]float64
	var cur []float64
	curPart := -1
	flush := func() {
		if len(cur) > 0 {
			out = append(out, cur)
			cur = nil
		}
	}
	for _, e := range g.cols {
		pz := ss.parts[e.part]
		if pz.rows == 0 || !w.Overlaps(pz.minCycle, pz.maxCycle) {
			r.mPruned.Inc()
			continue
		}
		covered := w.Contains(pz.minCycle) && w.Contains(pz.maxCycle)
		if !covered && !w.Overlaps(e.minCycle, e.maxCycle) {
			r.mPruned.Inc()
			continue
		}
		if e.part != curPart {
			flush()
			curPart = e.part
		}
		if covered || (w.Contains(e.minCycle) && w.Contains(e.maxCycle)) {
			rtt, _, err := r.readColumnCounted(ss, e)
			if err != nil {
				continue
			}
			cur = append(cur, rtt...)
			continue
		}
		rtt, cycle, err := r.readColumnCounted(ss, e)
		if err != nil {
			continue
		}
		for i, c := range cycle {
			if w.Contains(int(c)) {
				cur = append(cur, rtt[i])
			}
		}
	}
	flush()
	return out
}

// readColumnCounted is readColumn plus instrumentation: reads and
// decode failures count on the shared registry. A failed block is
// skipped by queries — corruption surfaces through
// segment_block_errors_total rather than a partial panic.
func (r *Reader) readColumnCounted(ss *shardSeg, e entry) ([]float64, []int32, error) {
	rtt, cycle, err := ss.readColumn(e)
	if err != nil {
		r.mBlockErrs.Inc()
		return nil, nil, err
	}
	r.mRead.Inc()
	return rtt, cycle, nil
}

// mergeSorted merges ascending vectors into one ascending vector. The
// output depends only on the combined multiset, which is exactly the
// bit-identity contract the figure functions need.
func mergeSorted(vecs [][]float64) []float64 {
	switch len(vecs) {
	case 0:
		return nil
	case 1:
		return vecs[0]
	}
	total := 0
	for _, v := range vecs {
		total += len(v)
	}
	out := make([]float64, 0, total)
	for _, v := range vecs {
		out = append(out, v...)
	}
	sort.Float64s(out)
	return out
}

// sketchView merges each group's sketches across shards and
// partitions in canonical order. ok is false when the window is not
// partition-aligned (some overlapping partition is only partially
// inside it) — the caller must fall back to the exact path.
func (r *Reader) sketchView(dim store.Dim, platform string, w store.Window) (map[string]*sketch.Sketch, bool) {
	for _, ss := range r.shards {
		for _, pz := range ss.parts {
			if pz.rows == 0 || !w.Overlaps(pz.minCycle, pz.maxCycle) {
				continue
			}
			if !w.Contains(pz.minCycle) || !w.Contains(pz.maxCycle) {
				return nil, false
			}
		}
	}
	out := map[string]*sketch.Sketch{}
	for _, ss := range r.shards {
		for _, k := range ss.keys {
			if k.dim != dim || k.platform != platform {
				continue
			}
			r.mergeGroupSketches(ss, ss.groups[k], w, k.name, out)
		}
	}
	return out, true
}

func (r *Reader) mergeGroupSketches(ss *shardSeg, g *groupBlocks, w store.Window, name string, out map[string]*sketch.Sketch) {
	for _, e := range g.sketches {
		pz := ss.parts[e.part]
		if pz.rows == 0 || !w.Overlaps(pz.minCycle, pz.maxCycle) {
			r.mPruned.Inc()
			continue
		}
		sk, err := ss.readSketch(e)
		if err != nil {
			r.mBlockErrs.Inc()
			continue
		}
		r.mRead.Inc()
		if dst, ok := out[name]; ok {
			dst.Merge(sk)
			r.mSketches.Inc()
		} else {
			out[name] = sk
		}
	}
}

// GroupQuantiles answers a single group's quantiles from its merged
// sketch — the point query the segment bench exercises. It returns
// ok=false when the window is not partition-aligned or the group has
// no samples in it; callers then use the exact path.
func (r *Reader) GroupQuantiles(dim store.Dim, platform, name string, w store.Window, qs ...float64) ([]float64, uint64, bool) {
	for _, ss := range r.shards {
		for _, pz := range ss.parts {
			if pz.rows == 0 || !w.Overlaps(pz.minCycle, pz.maxCycle) {
				continue
			}
			if !w.Contains(pz.minCycle) || !w.Contains(pz.maxCycle) {
				return nil, 0, false
			}
		}
	}
	merged := map[string]*sketch.Sketch{}
	key := qkey{dim: dim, platform: platform, name: name}
	for _, ss := range r.shards {
		if g, ok := ss.groups[key]; ok {
			r.mergeGroupSketches(ss, g, w, name, merged)
		}
	}
	sk := merged[name]
	if sk == nil || sk.Count() == 0 {
		return nil, 0, false
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = sk.Quantile(q)
	}
	return out, sk.Count(), true
}

// LatencyMap answers the Figure 3 query.
func (r *Reader) LatencyMap(minSamples int) []analysis.CountryLatency {
	return r.LatencyMapWindow(minSamples, store.Window{})
}

// LatencyMapWindow is LatencyMap restricted to a cycle window.
func (r *Reader) LatencyMapWindow(minSamples int, w store.Window) []analysis.CountryLatency {
	if !r.exact {
		if sks, ok := r.sketchView(store.DimCountry, "speedchecker", w); ok {
			return latencyMapFromSketches(sks, minSamples)
		}
	}
	return analysis.LatencyMapFrom(r.gatherExact(store.DimCountry, "speedchecker", w), minSamples)
}

// latencyMapFromSketches approximates the Figure 3 entries from merged
// country sketches: the median from the digest, the 95% CI from the
// notched-boxplot approximation ±1.57·IQR/√n (McGill et al.), in place
// of the exact path's percentile bootstrap.
func latencyMapFromSketches(sks map[string]*sketch.Sketch, minSamples int) []analysis.CountryLatency {
	names := make([]string, 0, len(sks))
	for cc := range sks {
		names = append(names, cc)
	}
	sort.Strings(names)
	var out []analysis.CountryLatency
	for _, cc := range names {
		sk := sks[cc]
		n := int(sk.Count())
		if n == 0 || n < minSamples {
			continue
		}
		c, ok := geo.CountryByCode(cc)
		if !ok {
			continue
		}
		med := sk.Quantile(0.5)
		iqr := sk.Quantile(0.75) - sk.Quantile(0.25)
		half := 1.57 * iqr / math.Sqrt(float64(n))
		out = append(out, analysis.CountryLatency{
			Country: cc, Continent: c.Continent,
			MedianMs: med, CILowMs: med - half, CIHighMs: med + half,
			Band: analysis.BandOf(med), Samples: n,
		})
	}
	return out
}

// ContinentCDFs answers the Figure 4 query for one platform.
func (r *Reader) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	return r.ContinentCDFsWindow(platform, store.Window{})
}

// sketchCDFPoints is the quantile-grid resolution used to materialize
// a CDF curve from a merged sketch.
const sketchCDFPoints = 1024

// ContinentCDFsWindow is ContinentCDFs restricted to a cycle window.
func (r *Reader) ContinentCDFsWindow(platform string, w store.Window) []analysis.ContinentDistribution {
	if !r.exact {
		if sks, ok := r.sketchView(store.DimContinent, platform, w); ok {
			return continentCDFsFromSketches(sks)
		}
	}
	byName := r.gatherExact(store.DimContinent, platform, w)
	byCont := make(map[geo.Continent][]float64, len(byName))
	for name, xs := range byName {
		cont, err := geo.ParseContinent(name)
		if err != nil {
			continue
		}
		byCont[cont] = xs
	}
	return analysis.ContinentDistributionsFrom(byCont)
}

// continentCDFsFromSketches materializes each continent's CDF from a
// dense quantile grid over the merged digest; threshold fractions come
// straight from the digest's CDF.
func continentCDFsFromSketches(sks map[string]*sketch.Sketch) []analysis.ContinentDistribution {
	var out []analysis.ContinentDistribution
	for _, cont := range geo.Continents() {
		sk := sks[cont.String()]
		if sk == nil || sk.Count() == 0 {
			continue
		}
		grid := make([]float64, sketchCDFPoints)
		for i := range grid {
			grid[i] = sk.Quantile((float64(i) + 0.5) / sketchCDFPoints)
		}
		cdf, err := stats.CDFFromSorted(grid)
		if err != nil {
			continue
		}
		out = append(out, analysis.ContinentDistribution{
			Continent: cont, CDF: cdf,
			UnderMTP: sk.CDF(analysis.MTPms),
			UnderHPL: sk.CDF(analysis.HPLms),
			UnderHRT: sk.CDF(analysis.HRTms),
			N:        int(sk.Count()),
		})
	}
	return out
}

// PlatformDiff answers the Figure 5 query.
func (r *Reader) PlatformDiff() []analysis.PlatformDiff {
	return r.PlatformDiffWindow(store.Window{})
}

// PlatformDiffWindow is PlatformDiff restricted to a cycle window.
func (r *Reader) PlatformDiffWindow(w store.Window) []analysis.PlatformDiff {
	if !r.exact {
		sc, ok1 := r.sketchView(store.DimContinent, "speedchecker", w)
		at, ok2 := r.sketchView(store.DimContinent, "atlas", w)
		if ok1 && ok2 {
			return platformDiffFromSketches(sc, at)
		}
	}
	toCont := func(byName map[string][]float64) map[geo.Continent][]float64 {
		out := make(map[geo.Continent][]float64, len(byName))
		for name, xs := range byName {
			cont, err := geo.ParseContinent(name)
			if err != nil {
				continue
			}
			out[cont] = xs
		}
		return out
	}
	return analysis.PlatformComparisonFrom(
		toCont(r.gatherExact(store.DimContinent, "speedchecker", w)),
		toCont(r.gatherExact(store.DimContinent, "atlas", w)))
}

// platformDiffFromSketches matches the two platforms' distributions
// percentile by percentile on the 1st..99th grid, like the exact path,
// with quantiles from the merged digests.
func platformDiffFromSketches(sc, at map[string]*sketch.Sketch) []analysis.PlatformDiff {
	var out []analysis.PlatformDiff
	for _, cont := range geo.Continents() {
		a, b := sc[cont.String()], at[cont.String()]
		if a == nil || b == nil || a.Count() == 0 || b.Count() == 0 {
			continue
		}
		d := analysis.PlatformDiff{Continent: cont, NSC: int(a.Count()), NAtlas: int(b.Count())}
		atlasFaster := 0
		for p := 1; p <= 99; p++ {
			q := float64(p) / 100
			diff := a.Quantile(q) - b.Quantile(q)
			d.Diffs = append(d.Diffs, diff)
			if diff > 0 {
				atlasFaster++
			}
		}
		d.AtlasFasterShare = float64(atlasFaster) / 99
		out = append(out, d)
	}
	return out
}

// PeeringShares answers the Figure 10 query; tallies live in the meta
// file, so both modes answer exactly.
func (r *Reader) PeeringShares() []analysis.InterconnectShare {
	return r.PeeringSharesWindow(store.Window{})
}

// PeeringSharesWindow is PeeringShares restricted to a cycle window,
// with the store's partition-granularity semantics.
func (r *Reader) PeeringSharesWindow(w store.Window) []analysis.InterconnectShare {
	merged := map[string]map[pipeline.Class]int{}
	for i, part := range r.meta.peering {
		if !r.meta.windows[i].OverlapsWindow(w) {
			continue
		}
		for prov, classes := range part {
			dst := merged[prov]
			if dst == nil {
				dst = map[pipeline.Class]int{}
				merged[prov] = dst
			}
			for cl, n := range classes {
				dst[cl] += n
			}
		}
	}
	return analysis.InterconnectionsFromCounts(merged)
}

// Changepoint ranks country×provider pairs by the RTT shift around
// cycle `at`, with Store.Changepoint's window semantics.
func (r *Reader) Changepoint(platform string, at, width int) []store.ChangepointEntry {
	before := store.Window{To: at}
	after := store.Window{From: at}
	if width > 0 {
		if f := at - width; f > 0 {
			before.From = f
		}
		after.To = at + width
	}
	if !r.exact {
		pre, ok1 := r.sketchView(store.DimPair, platform, before)
		post, ok2 := r.sketchView(store.DimPair, platform, after)
		if ok1 && ok2 {
			return changepointFromSketches(pre, post)
		}
	}
	return store.ChangepointFrom(
		r.gatherExact(store.DimPair, platform, before),
		r.gatherExact(store.DimPair, platform, after))
}

// sketchShiftPoints is the quantile-grid resolution for the
// Mann-Whitney AUC approximation.
const sketchShiftPoints = 201

// sketchShift approximates MannWhitneyShift — P(after > before) +
// ½P(=) — as the mean of F_before over a quantile grid of the after
// digest (the continuous-distribution identity E_y[F_before(y)]).
func sketchShift(pre, post *sketch.Sketch) float64 {
	var sum float64
	for i := 0; i < sketchShiftPoints; i++ {
		y := post.Quantile((float64(i) + 0.5) / sketchShiftPoints)
		sum += pre.CDF(y)
	}
	return sum / sketchShiftPoints
}

// changepointFromSketches scores the pairs from merged digests,
// mirroring store.ChangepointFrom's entry construction and ordering.
func changepointFromSketches(pre, post map[string]*sketch.Sketch) []store.ChangepointEntry {
	names := make(map[string]struct{}, len(pre)+len(post))
	for n := range pre {
		names[n] = struct{}{}
	}
	for n := range post {
		names[n] = struct{}{}
	}
	out := make([]store.ChangepointEntry, 0, len(names))
	for n := range names {
		country, provider := store.SplitPair(n)
		var nb, na int
		if sk := pre[n]; sk != nil {
			nb = int(sk.Count())
		}
		if sk := post[n]; sk != nil {
			na = int(sk.Count())
		}
		e := store.ChangepointEntry{Country: country, Provider: provider,
			NBefore: nb, NAfter: na, Shift: 0.5}
		switch {
		case nb == 0 && na == 0:
			continue
		case nb == 0:
			e.Status = "appeared"
			e.MedianAfterMs = post[n].Quantile(0.5)
		case na == 0:
			e.Status = "disappeared"
			e.MedianBeforeMs = pre[n].Quantile(0.5)
		default:
			e.MedianBeforeMs = pre[n].Quantile(0.5)
			e.MedianAfterMs = post[n].Quantile(0.5)
			e.DeltaMs = e.MedianAfterMs - e.MedianBeforeMs
			e.Shift = sketchShift(pre[n], post[n])
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Status == "") != (b.Status == "") {
			return a.Status == "" // scored pairs first
		}
		if a.Status != b.Status {
			return a.Status < b.Status // "appeared" before "disappeared"
		}
		//lint:ignore floateq ordering comparator: exactly-equal scores fall through to the next tie-break
		if a.Shift != b.Shift {
			return a.Shift > b.Shift
		}
		//lint:ignore floateq ordering comparator: exactly-equal deltas fall through to the next tie-break
		if a.DeltaMs != b.DeltaMs {
			return a.DeltaMs > b.DeltaMs
		}
		if a.Country != b.Country {
			return a.Country < b.Country
		}
		return a.Provider < b.Provider
	})
	return out
}
