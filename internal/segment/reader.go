package segment

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/store"
)

// Options configures a segment reader.
type Options struct {
	// Exact forces every figure query down the exact column-decode
	// path; by default queries answer from the merged quantile
	// sketches whenever the query window is partition-aligned.
	Exact bool
	// Obs registers the reader's instruments: open/read/prune/merge
	// counters and the mapped-bytes gauge. Nil runs uninstrumented.
	Obs *obs.Registry
}

// Reader serves figure queries from a written segment directory. The
// shard files stay memory-mapped read-only; queries fault in only the
// blocks their window and zone maps fail to prune. A Reader is safe
// for concurrent use — all state after Open is immutable except the
// obs instruments.
type Reader struct {
	meta    fileMeta
	shards  []*shardSeg
	summary store.Summary
	exact   bool

	mOpen      *obs.Counter
	mPruned    *obs.Counter
	mRead      *obs.Counter
	mSketches  *obs.Counter
	mBlockErrs *obs.Counter
	mOpenBytes *obs.Gauge
}

// fileMeta is the parsed meta.cseg: the store shape plus per-shard
// summary inputs and the peering tallies.
type fileMeta struct {
	shards     int
	partitions int
	cycles     int
	rows       int
	windows    []store.Window
	shardMeta  []shardMeta
	peering    []map[string]map[pipeline.Class]int
}

type shardMeta struct {
	rows         int
	welfordN     int
	welfordMean  float64
	welfordM2    float64
	welfordMin   float64
	welfordMax   float64
	providers    []string
	platformRows map[string]int
}

// qkey addresses one group's blocks inside a shard.
type qkey struct {
	dim      store.Dim
	platform string
	name     string
}

// groupBlocks are one group's footer entries, split by kind, each
// sorted by (partition, offset).
type groupBlocks struct {
	cols     []entry
	sketches []entry
}

// shardSeg is one mapped shard file.
type shardSeg struct {
	data    []byte
	close   func() error
	dict    []string
	parts   []partZone
	groups  map[qkey]*groupBlocks
	keys    []qkey // sorted; deterministic iteration order
	entries []entry
}

// Open maps the segment directory written by Write and returns a
// reader serving the store.Querier surface. Footers, dictionaries and
// zone maps parse eagerly (they are the query index); column and
// sketch blocks decode lazily per query.
func Open(dir string, opts Options) (*Reader, error) {
	r := &Reader{
		exact:      opts.Exact,
		mOpen:      opts.Obs.Counter("segment_open_total"),
		mPruned:    opts.Obs.Counter("segment_blocks_pruned_total"),
		mRead:      opts.Obs.Counter("segment_blocks_read_total"),
		mSketches:  opts.Obs.Counter("segment_sketch_merges_total"),
		mBlockErrs: opts.Obs.Counter("segment_block_errors_total"),
		mOpenBytes: opts.Obs.Gauge("segment_open_bytes"),
	}
	metaRaw, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		return nil, err
	}
	r.meta, err = parseMeta(metaRaw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", MetaFile, err)
	}
	for i := 0; i < r.meta.shards; i++ {
		data, closeFn, err := mapFile(filepath.Join(dir, ShardFile(i)))
		if err != nil {
			r.Close()
			return nil, err
		}
		ss, perr := parseShard(data)
		if perr != nil {
			closeFn()
			r.Close()
			return nil, fmt.Errorf("%s: %w", ShardFile(i), perr)
		}
		ss.close = closeFn
		if len(ss.parts) != r.meta.partitions {
			closeFn()
			r.Close()
			return nil, fmt.Errorf("%w: shard %d has %d partitions, meta says %d",
				ErrCorrupt, i, len(ss.parts), r.meta.partitions)
		}
		r.shards = append(r.shards, ss)
		r.mOpen.Inc()
		r.mOpenBytes.Add(int64(len(data)))
	}
	if len(r.meta.shardMeta) != len(r.shards) {
		r.Close()
		return nil, fmt.Errorf("%w: meta describes %d shards, found %d files",
			ErrCorrupt, len(r.meta.shardMeta), len(r.shards))
	}
	r.summary = r.buildSummary()
	return r, nil
}

// Close unmaps every shard file. The Reader must not be used after.
func (r *Reader) Close() error {
	var first error
	for _, ss := range r.shards {
		r.mOpenBytes.Add(-int64(len(ss.data)))
		if ss.close != nil {
			if err := ss.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	r.shards = nil
	return first
}

// buildSummary reconstructs the sealed store's summary from the meta
// file and the shard indexes, replaying the same shard-order Welford
// merge the store performs at seal — the result is bit-identical to
// the original store.Summary().
func (r *Reader) buildSummary() store.Summary {
	sum := store.Summary{
		Shards:     r.meta.shards,
		Partitions: r.meta.partitions,
		Cycles:     r.meta.cycles,
		Platforms:  map[string]int{},
	}
	countries := map[string]struct{}{}
	providers := map[string]struct{}{}
	var rtt stats.Welford
	for i, sm := range r.meta.shardMeta {
		sum.Rows += sm.rows
		if sm.rows < sum.MinShardRows || i == 0 {
			sum.MinShardRows = sm.rows
		}
		if sm.rows > sum.MaxShardRows {
			sum.MaxShardRows = sm.rows
		}
		for _, k := range r.shards[i].keys {
			if k.dim == store.DimCountry {
				countries[k.name] = struct{}{}
			}
		}
		for _, p := range sm.providers {
			providers[p] = struct{}{}
		}
		for plat, n := range sm.platformRows {
			sum.Platforms[plat] += n
		}
		w := stats.WelfordFromMoments(sm.welfordN, sm.welfordMean, sm.welfordM2, sm.welfordMin, sm.welfordMax)
		rtt.Merge(&w)
	}
	sum.Countries = len(countries)
	sum.Providers = len(providers)
	sum.RTTMeanMs = rtt.Mean()
	sum.RTTMinMs = rtt.Min()
	sum.RTTMaxMs = rtt.Max()
	return sum
}

// parseMeta parses a meta.cseg image.
func parseMeta(data []byte) (fileMeta, error) {
	var m fileMeta
	off, err := checkPreamble(data)
	if err != nil {
		return m, err
	}
	kind, body, next, err := frameAt(data, off)
	if err != nil {
		return m, err
	}
	if kind != BlockMeta {
		return m, fmt.Errorf("%w: first block is %v, want meta", ErrCorrupt, kind)
	}
	if err := m.parseMetaBlock(body); err != nil {
		return m, err
	}
	m.peering = make([]map[string]map[pipeline.Class]int, m.partitions)
	for i := range m.peering {
		m.peering[i] = map[string]map[pipeline.Class]int{}
	}
	for next < len(data) {
		kind, body, n, err := frameAt(data, next)
		if err != nil {
			return m, err
		}
		next = n
		switch kind {
		case BlockPeering:
			if err := m.parsePeeringBlock(body); err != nil {
				return m, err
			}
		case BlockMeta, BlockDict, BlockColumn, BlockSketch, BlockFooter:
			return m, fmt.Errorf("%w: unexpected %v block in meta file", ErrCorrupt, kind)
		default:
			return m, fmt.Errorf("%w: unknown block kind %v", ErrCorrupt, kind)
		}
	}
	return m, nil
}

// maxShape bounds the declared store shape against hostile meta files.
const maxShape = 1 << 20

func (m *fileMeta) parseMetaBlock(b []byte) error {
	var err error
	var shards, parts, cycles, rows uint64
	if shards, b, err = readUvarint(b); err != nil {
		return err
	}
	if parts, b, err = readUvarint(b); err != nil {
		return err
	}
	if cycles, b, err = readUvarint(b); err != nil {
		return err
	}
	if rows, b, err = readUvarint(b); err != nil {
		return err
	}
	if shards > maxShape || parts > maxShape || shards == 0 || parts == 0 {
		return fmt.Errorf("%w: shape %d shards × %d partitions", ErrCorrupt, shards, parts)
	}
	m.shards, m.partitions, m.cycles, m.rows = int(shards), int(parts), int(cycles), int(rows)
	m.windows = make([]store.Window, m.partitions)
	for i := range m.windows {
		var from, to int64
		if from, b, err = readZigzag(b); err != nil {
			return err
		}
		if to, b, err = readZigzag(b); err != nil {
			return err
		}
		m.windows[i] = store.Window{From: int(from), To: int(to)}
	}
	m.shardMeta = make([]shardMeta, m.shards)
	for i := range m.shardMeta {
		sm := &m.shardMeta[i]
		var v uint64
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		sm.rows = int(v)
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		sm.welfordN = int(v)
		if sm.welfordMean, b, err = readFloatBits(b); err != nil {
			return err
		}
		if sm.welfordM2, b, err = readFloatBits(b); err != nil {
			return err
		}
		if sm.welfordMin, b, err = readFloatBits(b); err != nil {
			return err
		}
		if sm.welfordMax, b, err = readFloatBits(b); err != nil {
			return err
		}
		var nprov uint64
		if nprov, b, err = readUvarint(b); err != nil {
			return err
		}
		if nprov > maxDictStrings {
			return fmt.Errorf("%w: %d providers", ErrCorrupt, nprov)
		}
		for j := uint64(0); j < nprov; j++ {
			var s string
			if s, b, err = readString(b); err != nil {
				return err
			}
			sm.providers = append(sm.providers, s)
		}
		var nplat uint64
		if nplat, b, err = readUvarint(b); err != nil {
			return err
		}
		if nplat > maxDictStrings {
			return fmt.Errorf("%w: %d platforms", ErrCorrupt, nplat)
		}
		sm.platformRows = make(map[string]int, nplat)
		for j := uint64(0); j < nplat; j++ {
			var s string
			if s, b, err = readString(b); err != nil {
				return err
			}
			if v, b, err = readUvarint(b); err != nil {
				return err
			}
			sm.platformRows[s] = int(v)
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in meta block", ErrCorrupt, len(b))
	}
	return nil
}

func (m *fileMeta) parsePeeringBlock(b []byte) error {
	part, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	if part >= uint64(m.partitions) {
		return fmt.Errorf("%w: peering partition %d of %d", ErrCorrupt, part, m.partitions)
	}
	nprov, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	if nprov > maxDictStrings {
		return fmt.Errorf("%w: %d peering providers", ErrCorrupt, nprov)
	}
	dst := m.peering[part]
	for i := uint64(0); i < nprov; i++ {
		var prov string
		if prov, b, err = readString(b); err != nil {
			return err
		}
		var ncl uint64
		if ncl, b, err = readUvarint(b); err != nil {
			return err
		}
		if ncl > 256 {
			return fmt.Errorf("%w: %d peering classes", ErrCorrupt, ncl)
		}
		classes := map[pipeline.Class]int{}
		for j := uint64(0); j < ncl; j++ {
			var cl, n uint64
			if cl, b, err = readUvarint(b); err != nil {
				return err
			}
			if n, b, err = readUvarint(b); err != nil {
				return err
			}
			if cl > 255 {
				return fmt.Errorf("%w: peering class %d", ErrCorrupt, cl)
			}
			classes[pipeline.Class(cl)] += int(n)
		}
		for cl, n := range classes {
			cur := dst[prov]
			if cur == nil {
				cur = map[pipeline.Class]int{}
				dst[prov] = cur
			}
			cur[cl] += n
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in peering block", ErrCorrupt, len(b))
	}
	return nil
}

// parseShard parses a shard file image: preamble, tail, footer and
// dictionary, building the per-group block index. Column and sketch
// block payloads are left untouched for lazy decoding.
func parseShard(data []byte) (*shardSeg, error) {
	if _, err := checkPreamble(data); err != nil {
		return nil, err
	}
	if len(data) < tailSize {
		return nil, ErrTruncated
	}
	tail := data[len(data)-tailSize:]
	if string(tail[12:]) != tailMagic {
		return nil, fmt.Errorf("%w: tail magic", ErrMagic)
	}
	if crc32Of(tail[:8]) != leUint32(tail[8:12]) {
		return nil, fmt.Errorf("%w: tail", ErrCRC)
	}
	footerOff := leUint64(tail[:8])
	if footerOff > uint64(len(data)-tailSize) {
		return nil, fmt.Errorf("%w: footer offset %d", ErrTruncated, footerOff)
	}
	kind, body, _, err := frameAt(data[:len(data)-tailSize], int(footerOff))
	if err != nil {
		return nil, fmt.Errorf("footer: %w", err)
	}
	if kind != BlockFooter {
		return nil, fmt.Errorf("%w: block at footer offset is %v", ErrCorrupt, kind)
	}
	ss := &shardSeg{data: data}
	if err := ss.parseFooter(body, int(footerOff)); err != nil {
		return nil, err
	}
	return ss, nil
}

func (ss *shardSeg) parseFooter(b []byte, footerOff int) error {
	dictOff, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	kind, dictBody, _, err := frameAt(ss.data[:len(ss.data)-tailSize], int(dictOff))
	if err != nil {
		return fmt.Errorf("dict: %w", err)
	}
	if kind != BlockDict {
		return fmt.Errorf("%w: block at dict offset is %v", ErrCorrupt, kind)
	}
	if err := ss.parseDict(dictBody); err != nil {
		return err
	}
	nparts, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	if nparts == 0 || nparts > maxShape {
		return fmt.Errorf("%w: %d partitions", ErrCorrupt, nparts)
	}
	ss.parts = make([]partZone, nparts)
	for i := range ss.parts {
		var rows uint64
		var minC, maxC int64
		if rows, b, err = readUvarint(b); err != nil {
			return err
		}
		if minC, b, err = readZigzag(b); err != nil {
			return err
		}
		if maxC, b, err = readZigzag(b); err != nil {
			return err
		}
		if rows > 0 && minC > maxC {
			return fmt.Errorf("%w: partition %d zone [%d, %d]", ErrCorrupt, i, minC, maxC)
		}
		ss.parts[i] = partZone{rows: int(rows), minCycle: int(minC), maxCycle: int(maxC)}
	}
	nentries, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	if nentries > uint64(len(ss.data)) { // every entry indexes ≥1 distinct byte
		return fmt.Errorf("%w: %d entries", ErrCorrupt, nentries)
	}
	ss.entries = make([]entry, 0, nentries)
	dataEnd := len(ss.data) - tailSize
	for i := uint64(0); i < nentries; i++ {
		var e entry
		if len(b) < 2 {
			return fmt.Errorf("%w: entry header", ErrTruncated)
		}
		e.kind, e.dim = BlockKind(b[0]), store.Dim(b[1])
		b = b[2:]
		if e.kind != BlockColumn && e.kind != BlockSketch {
			return fmt.Errorf("%w: entry kind %v", ErrCorrupt, e.kind)
		}
		if e.dim != store.DimCountry && e.dim != store.DimContinent && e.dim != store.DimPair {
			return fmt.Errorf("%w: entry dim %d", ErrCorrupt, e.dim)
		}
		var v uint64
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		e.platformID = uint32(v)
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		e.nameID = uint32(v)
		if e.platformID == 0 || int(e.platformID) > len(ss.dict) ||
			e.nameID == 0 || int(e.nameID) > len(ss.dict) {
			return fmt.Errorf("%w: entry dict ids %d/%d of %d", ErrCorrupt, e.platformID, e.nameID, len(ss.dict))
		}
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		if v >= uint64(len(ss.parts)) {
			return fmt.Errorf("%w: entry partition %d", ErrCorrupt, v)
		}
		e.part = int(v)
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		e.rows = int(v)
		if e.rows == 0 {
			return fmt.Errorf("%w: empty entry", ErrCorrupt)
		}
		if e.kind == BlockColumn && e.rows > MaxBlockRows {
			return fmt.Errorf("%w: column entry rows %d", ErrCorrupt, e.rows)
		}
		var minC, maxC int64
		if minC, b, err = readZigzag(b); err != nil {
			return err
		}
		if maxC, b, err = readZigzag(b); err != nil {
			return err
		}
		if minC > maxC {
			return fmt.Errorf("%w: entry zone [%d, %d]", ErrCorrupt, minC, maxC)
		}
		e.minCycle, e.maxCycle = int(minC), int(maxC)
		if e.minRTT, b, err = readFloatBits(b); err != nil {
			return err
		}
		if e.maxRTT, b, err = readFloatBits(b); err != nil {
			return err
		}
		if math.IsNaN(e.minRTT) || math.IsNaN(e.maxRTT) || e.minRTT > e.maxRTT {
			return fmt.Errorf("%w: entry RTT zone", ErrCorrupt)
		}
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		e.offset = int(v)
		if v, b, err = readUvarint(b); err != nil {
			return err
		}
		e.length = int(v)
		if e.offset < 0 || e.length <= 0 || e.offset+e.length > dataEnd || e.offset+e.length < e.offset {
			return fmt.Errorf("%w: entry span [%d, +%d)", ErrCorrupt, e.offset, e.length)
		}
		if e.offset+e.length > footerOff && e.offset < footerOff {
			return fmt.Errorf("%w: entry overlaps footer", ErrCorrupt)
		}
		ss.entries = append(ss.entries, e)
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in footer", ErrCorrupt, len(b))
	}
	ss.buildIndex()
	return nil
}

func (ss *shardSeg) parseDict(b []byte) error {
	n, b, err := readUvarint(b)
	if err != nil {
		return err
	}
	if n > maxDictStrings {
		return fmt.Errorf("%w: %d dict strings", ErrCorrupt, n)
	}
	ss.dict = make([]string, 0, n)
	for i := uint64(0); i < n; i++ {
		var s string
		if s, b, err = readString(b); err != nil {
			return err
		}
		ss.dict = append(ss.dict, s)
	}
	if len(b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes in dict", ErrCorrupt, len(b))
	}
	return nil
}

func (ss *shardSeg) buildIndex() {
	ss.groups = make(map[qkey]*groupBlocks)
	for _, e := range ss.entries {
		k := qkey{dim: e.dim, platform: ss.dict[e.platformID-1], name: ss.dict[e.nameID-1]}
		g := ss.groups[k]
		if g == nil {
			g = &groupBlocks{}
			ss.groups[k] = g
			ss.keys = append(ss.keys, k)
		}
		if e.kind == BlockColumn {
			g.cols = append(g.cols, e)
		} else {
			g.sketches = append(g.sketches, e)
		}
	}
	for _, g := range ss.groups {
		sortEntries(g.cols)
		sortEntries(g.sketches)
	}
	sort.Slice(ss.keys, func(a, b int) bool {
		ka, kb := ss.keys[a], ss.keys[b]
		if ka.dim != kb.dim {
			return ka.dim < kb.dim
		}
		if ka.platform != kb.platform {
			return ka.platform < kb.platform
		}
		return ka.name < kb.name
	})
}

func sortEntries(es []entry) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].part != es[j].part {
			return es[i].part < es[j].part
		}
		return es[i].offset < es[j].offset
	})
}

// readColumn decodes one column block, cross-checking the decoded rows
// against the footer entry's row count and zone maps — a block whose
// data escapes its advertised ranges is a zone-map lie, not valid
// data.
func (ss *shardSeg) readColumn(e entry) ([]float64, []int32, error) {
	kind, body, _, err := frameAt(ss.data[:e.offset+e.length], e.offset)
	if err != nil {
		return nil, nil, err
	}
	if kind != BlockColumn {
		return nil, nil, fmt.Errorf("%w: entry points at %v block", ErrCorrupt, kind)
	}
	rows, body, err := readUvarint(body)
	if err != nil {
		return nil, nil, err
	}
	if rows == 0 || rows > MaxBlockRows || int(rows) != e.rows {
		return nil, nil, fmt.Errorf("%w: block rows %d, entry says %d", ErrCorrupt, rows, e.rows)
	}
	if len(body) == 0 {
		return nil, nil, ErrTruncated
	}
	enc := body[0]
	body = body[1:]
	rtt := make([]float64, rows)
	switch enc {
	case 1: // raw
		for i := range rtt {
			if rtt[i], body, err = readFloatBits(body); err != nil {
				return nil, nil, err
			}
		}
	case 0: // bit-delta
		if len(body) < 8 {
			return nil, nil, ErrTruncated
		}
		bits := leUint64(body)
		body = body[8:]
		rtt[0] = math.Float64frombits(bits)
		for i := uint64(1); i < rows; i++ {
			var d uint64
			if d, body, err = readUvarint(body); err != nil {
				return nil, nil, err
			}
			if bits > math.MaxUint64-d {
				return nil, nil, fmt.Errorf("%w: RTT bits overflow", ErrCorrupt)
			}
			bits += d
			rtt[i] = math.Float64frombits(bits)
		}
	default:
		return nil, nil, fmt.Errorf("%w: RTT encoding %d", ErrCorrupt, enc)
	}
	prev := math.Inf(-1)
	for _, x := range rtt {
		if math.IsNaN(x) || x < prev {
			return nil, nil, fmt.Errorf("%w: RTT column not sorted", ErrCorrupt)
		}
		prev = x
	}
	if rtt[0] < e.minRTT || rtt[rows-1] > e.maxRTT {
		return nil, nil, fmt.Errorf("%w: RTT range [%g, %g] outside entry [%g, %g]",
			ErrZoneMap, rtt[0], rtt[rows-1], e.minRTT, e.maxRTT)
	}
	cycle := make([]int32, rows)
	var cur int64
	for i := range cycle {
		var d int64
		if d, body, err = readZigzag(body); err != nil {
			return nil, nil, err
		}
		if i == 0 {
			cur = d
		} else {
			cur += d
		}
		if cur < int64(e.minCycle) || cur > int64(e.maxCycle) {
			return nil, nil, fmt.Errorf("%w: cycle %d outside entry [%d, %d]",
				ErrZoneMap, cur, e.minCycle, e.maxCycle)
		}
		cycle[i] = int32(cur)
	}
	if len(body) != 0 {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes in column block", ErrCorrupt, len(body))
	}
	return rtt, cycle, nil
}

// readSketch decodes one sketch block, cross-checking its count
// against the footer entry.
func (ss *shardSeg) readSketch(e entry) (*sketch.Sketch, error) {
	kind, body, _, err := frameAt(ss.data[:e.offset+e.length], e.offset)
	if err != nil {
		return nil, err
	}
	if kind != BlockSketch {
		return nil, fmt.Errorf("%w: entry points at %v block", ErrCorrupt, kind)
	}
	sk, rest, err := sketch.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in sketch block", ErrCorrupt, len(rest))
	}
	if sk.Count() != uint64(e.rows) {
		return nil, fmt.Errorf("%w: sketch count %d, entry says %d", ErrZoneMap, sk.Count(), e.rows)
	}
	if sk.Count() > 0 && (sk.Min() < e.minRTT || sk.Max() > e.maxRTT) {
		return nil, fmt.Errorf("%w: sketch range outside entry", ErrZoneMap)
	}
	return sk, nil
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func leUint64(b []byte) uint64 {
	return uint64(leUint32(b)) | uint64(leUint32(b[4:]))<<32
}

// CheckMeta fully validates a meta file image — the fuzzing entry
// point for the meta format.
func CheckMeta(data []byte) error {
	_, err := parseMeta(data)
	return err
}

// CheckShard fully validates a shard file image: structure, CRCs,
// dictionary, footer index, and every indexed block decoded with its
// zone maps cross-checked. It is the fuzzing entry point and the
// integrity pass of `cloudy segment -check`.
func CheckShard(data []byte) error {
	ss, err := parseShard(data)
	if err != nil {
		return err
	}
	for _, e := range ss.entries {
		switch e.kind {
		case BlockColumn:
			if _, _, err := ss.readColumn(e); err != nil {
				return err
			}
		case BlockSketch:
			if _, err := ss.readSketch(e); err != nil {
				return err
			}
		case BlockMeta, BlockDict, BlockPeering, BlockFooter:
			return fmt.Errorf("%w: entry kind %v", ErrCorrupt, e.kind)
		default:
			return fmt.Errorf("%w: unknown entry kind %v", ErrCorrupt, e.kind)
		}
	}
	return nil
}
