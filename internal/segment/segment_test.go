package segment

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/pipeline"
	"repro/internal/store"
)

// buildStore synthesizes a sealed store with both platforms, several
// countries×providers, peering tallies, and samples spread over the
// cycle axis — enough structure to exercise every figure query.
func buildStore(tb testing.TB, shards, partitions, cycles, perCell int) *store.Store {
	tb.Helper()
	rng := rand.New(rand.NewSource(1234))
	b := store.NewBuilder(store.Options{Shards: shards, Partitions: partitions, Cycles: cycles})
	countries := []struct {
		code string
		base float64
	}{
		{"DE", 18}, {"GB", 24}, {"US", 35}, {"BR", 62}, {"JP", 41}, {"ZA", 88},
	}
	providers := []string{"AMZN", "GCP", "MSFT"}
	for _, c := range countries {
		meta, ok := geo.CountryByCode(c.code)
		if !ok {
			tb.Fatalf("unknown fixture country %s", c.code)
		}
		for _, platform := range []string{"speedchecker", "atlas"} {
			offset := 0.0
			if platform == "atlas" {
				offset = -2.5
			}
			for _, prov := range providers {
				for cyc := 0; cyc < cycles; cyc++ {
					for k := 0; k < perCell; k++ {
						b.Add(store.Sample{
							Platform: platform, Country: c.code, Continent: meta.Continent,
							Provider: prov,
							RTTms:    c.base + offset + 30*rng.Float64(),
							Cycle:    cyc,
						})
					}
				}
			}
		}
	}
	for cyc := 0; cyc < cycles; cyc++ {
		b.AddPeeringCountsAt(cyc, map[string]map[pipeline.Class]int{
			"AMZN": {pipeline.ClassDirect: 5 + cyc, pipeline.ClassDirectIXP: 2},
			"GCP":  {pipeline.ClassDirect: 3, pipeline.ClassDirectIXP: 4 + cyc%3},
		})
	}
	return b.Seal()
}

var testWindows = []store.Window{
	{},                 // unwindowed
	{From: 0, To: 16},  // explicit full window
	{From: 8},          // open above
	{To: 4},            // open below
	{From: 3, To: 11},  // interior, cuts partitions
	{From: 7, To: 8},   // single cycle
	{From: 40, To: 50}, // past the end: empty
}

// TestExactRoundTripBitIdentical is the acceptance proof: for every
// figure query, windowed and unwindowed, a store sealed → written →
// reopened from mmap in exact mode answers bit-identically to the
// in-memory store.
func TestExactRoundTripBitIdentical(t *testing.T) {
	const cycles = 16
	for _, shards := range []int{1, 4} {
		for _, parts := range []int{1, 4, 16} {
			st := buildStore(t, shards, parts, cycles, 4)
			dir := t.TempDir()
			if err := Write(dir, st); err != nil {
				t.Fatalf("shards=%d parts=%d: Write: %v", shards, parts, err)
			}
			r, err := Open(dir, Options{Exact: true})
			if err != nil {
				t.Fatalf("shards=%d parts=%d: Open: %v", shards, parts, err)
			}
			defer r.Close()

			if got, want := r.Summary(), st.Summary(); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d parts=%d: Summary:\n got %+v\nwant %+v", shards, parts, got, want)
			}
			for _, w := range testWindows {
				if got, want := r.LatencyMapWindow(5, w), st.LatencyMapWindow(5, w); !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d parts=%d w=%+v: LatencyMap diverges", shards, parts, w)
				}
				for _, platform := range []string{"speedchecker", "atlas"} {
					if got, want := r.ContinentCDFsWindow(platform, w), st.ContinentCDFsWindow(platform, w); !reflect.DeepEqual(got, want) {
						t.Errorf("shards=%d parts=%d w=%+v: ContinentCDFs(%s) diverges", shards, parts, w, platform)
					}
				}
				if got, want := r.PlatformDiffWindow(w), st.PlatformDiffWindow(w); !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d parts=%d w=%+v: PlatformDiff diverges", shards, parts, w)
				}
				if got, want := r.PeeringSharesWindow(w), st.PeeringSharesWindow(w); !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d parts=%d w=%+v: PeeringShares diverges", shards, parts, w)
				}
			}
			for _, cp := range []struct{ at, width int }{{8, 0}, {8, 4}, {5, 3}, {1, 0}} {
				got := r.Changepoint("speedchecker", cp.at, cp.width)
				want := st.Changepoint("speedchecker", cp.at, cp.width)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("shards=%d parts=%d: Changepoint(%d, %d) diverges", shards, parts, cp.at, cp.width)
				}
			}
		}
	}
}

// TestWriteDeterministic pins that writing the same sealed store twice
// produces byte-identical files — the format has no hidden
// nondeterminism (map order, timestamps, addresses).
func TestWriteDeterministic(t *testing.T) {
	st := buildStore(t, 4, 4, 16, 3)
	dirA, dirB := t.TempDir(), t.TempDir()
	if err := Write(dirA, st); err != nil {
		t.Fatal(err)
	}
	if err := Write(dirB, st); err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dirA, "*.cseg"))
	if err != nil || len(names) != 5 { // meta + 4 shards
		t.Fatalf("glob: %v (%d files)", err, len(names))
	}
	for _, name := range names {
		a, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, filepath.Base(name)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between two writes of the same store", filepath.Base(name))
		}
	}
}

// TestCheckRejectsCorruption walks every byte of a valid shard file,
// flips it, and requires CheckShard to fail (or, for bytes the footer
// never references, at worst still parse) without panicking. It then
// checks targeted forgeries: truncation at every length, and a CRC
// forgery where the block body and its checksum are rewritten
// consistently but the footer zone map now lies.
func TestCheckRejectsCorruption(t *testing.T) {
	st := buildStore(t, 1, 2, 8, 2)
	dir := t.TempDir()
	if err := Write(dir, st); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ShardFile(0)))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckShard(raw); err != nil {
		t.Fatalf("valid shard rejected: %v", err)
	}
	metaRaw, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckMeta(metaRaw); err != nil {
		t.Fatalf("valid meta rejected: %v", err)
	}

	// Truncations must all be rejected.
	for _, cut := range []int{0, 1, 4, 5, len(raw) / 2, len(raw) - 1} {
		if err := CheckShard(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Bit flips: every flipped byte must either fail a check or leave
	// the file structurally valid (a byte in unreferenced slack) — but
	// never panic. Step through the file to keep the test fast.
	for i := 0; i < len(raw); i += 7 {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x40
		_ = CheckShard(mut) // must not panic; error expected for almost all i
	}
	// Flipping a byte inside the first column block's payload must be
	// caught by its CRC specifically.
	ss, err := parseShard(raw)
	if err != nil {
		t.Fatal(err)
	}
	var col entry
	for _, e := range ss.entries {
		if e.kind == BlockColumn {
			col = e
			break
		}
	}
	if col.length == 0 {
		t.Fatal("no column entry found")
	}
	mut := append([]byte(nil), raw...)
	mut[col.offset+col.length/2] ^= 0x01
	if err := CheckShard(mut); err == nil {
		t.Error("column payload flip accepted")
	}
}

// TestZoneMapLieDetected forges a shard whose footer zone map promises
// a cycle range the block data escapes — with valid CRCs everywhere —
// and requires the reader to refuse the block.
func TestZoneMapLieDetected(t *testing.T) {
	sw := newShardWriter(1)
	sw.setPartition(0, 4, 0, 10)
	sw.addGroup(0, store.DimCountry, "speedchecker", "DE",
		[]float64{10, 11, 12, 13}, []int32{0, 3, 7, 9})
	// Forge: shrink the recorded cycle zone of every entry so the real
	// cycles (up to 9) escape it.
	for i := range sw.entries {
		sw.entries[i].maxCycle = 2
	}
	img := sw.finish()
	if err := CheckShard(img); err == nil {
		t.Fatal("zone-map lie accepted")
	} else if !errors.Is(err, ErrZoneMap) {
		t.Fatalf("zone-map lie surfaced as %v, want ErrZoneMap", err)
	}

	// Same forgery on the RTT zone map.
	sw = newShardWriter(1)
	sw.setPartition(0, 4, 0, 10)
	sw.addGroup(0, store.DimCountry, "speedchecker", "DE",
		[]float64{10, 11, 12, 13}, []int32{0, 3, 7, 9})
	for i := range sw.entries {
		sw.entries[i].maxRTT = 11
	}
	if err := CheckShard(sw.finish()); err == nil || !errors.Is(err, ErrZoneMap) {
		t.Fatalf("RTT zone lie: got %v, want ErrZoneMap", err)
	}
}

