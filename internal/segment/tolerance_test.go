package segment

import (
	"math"
	"testing"

	"repro/internal/store"
)

// Pinned per-figure tolerances for the sketch path vs the exact path.
// The fixture RTTs span roughly 15..120 ms; group sizes run from a few
// hundred (country×provider×partition) to tens of thousands
// (continent), so the δ=200 digest holds rank error ~1% mid-quantile.
const (
	epsLatencyMedianRel = 0.01 // Figure 3 medians: ≤1% relative
	epsCDFFraction      = 0.02 // Figure 4 threshold fractions: ≤0.02 absolute
	epsCDFCurve         = 0.03 // Figure 4 curve, sampled: ≤0.03 absolute probability
	epsDiffMs           = 3.0  // Figure 5 per-centile diffs: ≤3 ms absolute
	epsChangepointRel   = 0.01 // changepoint medians: ≤1% relative
	epsShiftAbs         = 0.05 // changepoint Mann-Whitney AUC: ≤0.05 absolute
)

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

// TestSketchWithinToleranceOfExact compares every figure endpoint
// between the sketch reader and the exact reader across shard counts
// 1/4/16 × partition counts 1/4/16, on full-window and
// partition-aligned windowed queries (windows that cut a partition
// fall back to the exact path by construction, so there is nothing to
// compare there).
func TestSketchWithinToleranceOfExact(t *testing.T) {
	const cycles = 16
	for _, shards := range []int{1, 4, 16} {
		for _, parts := range []int{1, 4, 16} {
			st := buildStore(t, shards, parts, cycles, 8)
			dir := t.TempDir()
			if err := Write(dir, st); err != nil {
				t.Fatal(err)
			}
			exact, err := Open(dir, Options{Exact: true})
			if err != nil {
				t.Fatal(err)
			}
			approx, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			windows := []store.Window{{}}
			if parts > 1 {
				span := cycles / parts
				windows = append(windows, store.Window{From: 0, To: span * (parts / 2)})
			}
			for _, w := range windows {
				compareFigures(t, shards, parts, w, exact, approx)
			}
			compareChangepoint(t, shards, parts, exact, approx)
			exact.Close()
			approx.Close()
		}
	}
}

func compareFigures(t *testing.T, shards, parts int, w store.Window, exact, approx *Reader) {
	t.Helper()
	// Figure 3: latency map.
	em := exact.LatencyMapWindow(5, w)
	am := approx.LatencyMapWindow(5, w)
	if len(em) != len(am) {
		t.Fatalf("shards=%d parts=%d w=%+v: latency map has %d sketch entries, %d exact", shards, parts, w, len(am), len(em))
	}
	for i := range em {
		if em[i].Country != am[i].Country || em[i].Samples != am[i].Samples {
			t.Fatalf("shards=%d parts=%d w=%+v: latency map row %d identity mismatch", shards, parts, w, i)
		}
		if r := relErr(am[i].MedianMs, em[i].MedianMs); r > epsLatencyMedianRel {
			t.Errorf("shards=%d parts=%d w=%+v: %s median rel err %.4f > %.4f",
				shards, parts, w, em[i].Country, r, epsLatencyMedianRel)
		}
	}
	// Figure 4: continent CDFs, both platforms.
	for _, platform := range []string{"speedchecker", "atlas"} {
		ec := exact.ContinentCDFsWindow(platform, w)
		ac := approx.ContinentCDFsWindow(platform, w)
		if len(ec) != len(ac) {
			t.Fatalf("shards=%d parts=%d w=%+v: %s CDF continent count %d vs %d", shards, parts, w, platform, len(ac), len(ec))
		}
		for i := range ec {
			if ec[i].Continent != ac[i].Continent || ec[i].N != ac[i].N {
				t.Fatalf("shards=%d parts=%d w=%+v: %s CDF row %d identity mismatch", shards, parts, w, platform, i)
			}
			for name, pair := range map[string][2]float64{
				"UnderMTP": {ac[i].UnderMTP, ec[i].UnderMTP},
				"UnderHPL": {ac[i].UnderHPL, ec[i].UnderHPL},
				"UnderHRT": {ac[i].UnderHRT, ec[i].UnderHRT},
			} {
				if d := math.Abs(pair[0] - pair[1]); d > epsCDFFraction {
					t.Errorf("shards=%d parts=%d w=%+v: %s %v %s abs err %.4f > %.4f",
						shards, parts, w, platform, ec[i].Continent, name, d, epsCDFFraction)
				}
			}
			// Sample the curve at the exact CDF's own quantiles.
			for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
				x := ec[i].CDF.InverseAt(q)
				if d := math.Abs(ac[i].CDF.At(x) - ec[i].CDF.At(x)); d > epsCDFCurve {
					t.Errorf("shards=%d parts=%d w=%+v: %s %v CDF(%.1fms) abs err %.4f > %.4f",
						shards, parts, w, platform, ec[i].Continent, x, d, epsCDFCurve)
				}
			}
		}
	}
	// Figure 5: platform diff centiles.
	ed := exact.PlatformDiffWindow(w)
	ad := approx.PlatformDiffWindow(w)
	if len(ed) != len(ad) {
		t.Fatalf("shards=%d parts=%d w=%+v: platform diff continent count %d vs %d", shards, parts, w, len(ad), len(ed))
	}
	for i := range ed {
		if ed[i].Continent != ad[i].Continent || ed[i].NSC != ad[i].NSC || ed[i].NAtlas != ad[i].NAtlas {
			t.Fatalf("shards=%d parts=%d w=%+v: platform diff row %d identity mismatch", shards, parts, w, i)
		}
		for c := range ed[i].Diffs {
			if d := math.Abs(ad[i].Diffs[c] - ed[i].Diffs[c]); d > epsDiffMs {
				t.Errorf("shards=%d parts=%d w=%+v: %v centile %d diff abs err %.2fms > %.1fms",
					shards, parts, w, ed[i].Continent, c+1, d, epsDiffMs)
			}
		}
	}
	// Figure 10: peering shares answer exactly in both modes.
	if got, want := approx.PeeringSharesWindow(w), exact.PeeringSharesWindow(w); len(got) != len(want) {
		t.Fatalf("shards=%d parts=%d w=%+v: peering shares differ", shards, parts, w)
	}
}

func compareChangepoint(t *testing.T, shards, parts int, exact, approx *Reader) {
	t.Helper()
	// at=8 splits the 16-cycle axis in half — partition-aligned for
	// every partition count that divides 16 evenly at that point, and
	// an exact-fallback (trivially equal) otherwise.
	ec := exact.Changepoint("speedchecker", 8, 0)
	ac := approx.Changepoint("speedchecker", 8, 0)
	if len(ec) != len(ac) {
		t.Fatalf("shards=%d parts=%d: changepoint entry count %d vs %d", shards, parts, len(ac), len(ec))
	}
	byPair := map[string]store.ChangepointEntry{}
	for _, e := range ec {
		byPair[e.Country+"|"+e.Provider] = e
	}
	for _, a := range ac {
		e, ok := byPair[a.Country+"|"+a.Provider]
		if !ok {
			t.Fatalf("shards=%d parts=%d: changepoint pair %s/%s missing from exact", shards, parts, a.Country, a.Provider)
		}
		if a.NBefore != e.NBefore || a.NAfter != e.NAfter || a.Status != e.Status {
			t.Fatalf("shards=%d parts=%d: changepoint %s/%s identity mismatch", shards, parts, a.Country, a.Provider)
		}
		if e.NBefore > 0 {
			if r := relErr(a.MedianBeforeMs, e.MedianBeforeMs); r > epsChangepointRel {
				t.Errorf("shards=%d parts=%d: %s/%s median-before rel err %.4f", shards, parts, a.Country, a.Provider, r)
			}
		}
		if e.NAfter > 0 {
			if r := relErr(a.MedianAfterMs, e.MedianAfterMs); r > epsChangepointRel {
				t.Errorf("shards=%d parts=%d: %s/%s median-after rel err %.4f", shards, parts, a.Country, a.Provider, r)
			}
		}
		if d := math.Abs(a.Shift - e.Shift); d > epsShiftAbs {
			t.Errorf("shards=%d parts=%d: %s/%s shift abs err %.4f > %.4f", shards, parts, a.Country, a.Provider, d, epsShiftAbs)
		}
	}
}

// TestGroupQuantilesSketch pins the single-group point query: counts
// are exact, quantiles within the digest tolerance of the exact merged
// vector, and unaligned windows refuse the sketch path.
func TestGroupQuantilesSketch(t *testing.T) {
	st := buildStore(t, 4, 4, 16, 8)
	dir := t.TempDir()
	if err := Write(dir, st); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	qs, n, ok := r.GroupQuantiles(store.DimCountry, "speedchecker", "DE", store.Window{}, 0.5, 0.95)
	if !ok {
		t.Fatal("full-window group query refused the sketch path")
	}
	exactVals, exactN, err := st.CountryQuantiles("speedchecker", "DE", 0.5, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if int(n) != exactN {
		t.Fatalf("sketch count %d, exact %d", n, exactN)
	}
	for i := range qs {
		if r := relErr(qs[i], exactVals[i]); r > 0.02 {
			t.Errorf("quantile %d rel err %.4f", i, r)
		}
	}
	if _, _, ok := r.GroupQuantiles(store.DimCountry, "speedchecker", "DE", store.Window{From: 1, To: 3}, 0.5); ok {
		t.Error("partition-cutting window did not refuse the sketch path")
	}
}
