package segment

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/pipeline"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/store"
)

// MetaFile is the store-level metadata file inside a segment
// directory; shard files are named by ShardFile.
const MetaFile = "meta.cseg"

// ShardFile names shard i's segment file.
func ShardFile(i int) string { return fmt.Sprintf("shard-%04d.cseg", i) }

// Write serializes a sealed store into dir as one meta file plus one
// file per shard, creating dir if needed. The output is a
// deterministic function of the sealed store: the store dumps in
// canonical order and every encoding choice is value-driven.
func Write(dir string, st *store.Store) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	sum := st.Summary()
	mw := &metaWriter{summary: sum}
	var sw *shardWriter
	shardFiles := make([][]byte, 0, sum.Shards)
	st.Dump(store.DumpVisitor{
		Shard: func(shard, rows int, providers []string, platformRows map[string]int, rtt *stats.Welford) {
			mw.addShard(rows, providers, platformRows, rtt)
			if sw != nil {
				shardFiles = append(shardFiles, sw.finish())
			}
			sw = newShardWriter(sum.Partitions)
		},
		Partition: func(shard, part int, w store.Window, minCycle, maxCycle, rows int) {
			if shard == 0 {
				mw.windows = append(mw.windows, w)
			}
			sw.setPartition(part, rows, minCycle, maxCycle)
		},
		Group: func(shard, part int, dim store.Dim, platform, name string, rtt []float64, cycle []int32) {
			sw.addGroup(part, dim, platform, name, rtt, cycle)
		},
		Peering: func(part int, w store.Window, counts map[string]map[pipeline.Class]int) {
			mw.addPeering(part, counts)
		},
	})
	if sw != nil {
		shardFiles = append(shardFiles, sw.finish())
	}
	for len(shardFiles) < sum.Shards { // stores with zero shards dumped
		shardFiles = append(shardFiles, newShardWriter(sum.Partitions).finish())
	}
	if err := os.WriteFile(filepath.Join(dir, MetaFile), mw.finish(), 0o644); err != nil {
		return err
	}
	for i, buf := range shardFiles {
		if err := os.WriteFile(filepath.Join(dir, ShardFile(i)), buf, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// metaWriter accumulates the meta file: store shape, partition
// windows, per-shard summary moments, and peering tallies.
type metaWriter struct {
	summary store.Summary
	windows []store.Window
	shards  []byte // concatenated per-shard meta sections
	peering []byte // concatenated peering block frames
}

func (mw *metaWriter) addShard(rows int, providers []string, platformRows map[string]int, rtt *stats.Welford) {
	b := mw.shards
	b = binary.AppendUvarint(b, uint64(rows))
	n, mean, m2, min, max := rtt.Moments()
	b = binary.AppendUvarint(b, uint64(n))
	b = appendFloatBits(b, mean)
	b = appendFloatBits(b, m2)
	b = appendFloatBits(b, min)
	b = appendFloatBits(b, max)
	b = binary.AppendUvarint(b, uint64(len(providers)))
	for _, p := range providers {
		b = appendString(b, p)
	}
	plats := make([]string, 0, len(platformRows))
	for p := range platformRows {
		plats = append(plats, p)
	}
	sort.Strings(plats)
	b = binary.AppendUvarint(b, uint64(len(plats)))
	for _, p := range plats {
		b = appendString(b, p)
		b = binary.AppendUvarint(b, uint64(platformRows[p]))
	}
	mw.shards = b
}

func (mw *metaWriter) addPeering(part int, counts map[string]map[pipeline.Class]int) {
	body := binary.AppendUvarint(nil, uint64(part))
	provs := make([]string, 0, len(counts))
	for p := range counts {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	body = binary.AppendUvarint(body, uint64(len(provs)))
	for _, p := range provs {
		body = appendString(body, p)
		classes := make([]int, 0, len(counts[p]))
		for cl := range counts[p] {
			classes = append(classes, int(cl))
		}
		sort.Ints(classes)
		body = binary.AppendUvarint(body, uint64(len(classes)))
		for _, cl := range classes {
			body = binary.AppendUvarint(body, uint64(cl))
			body = binary.AppendUvarint(body, uint64(counts[p][pipeline.Class(cl)]))
		}
	}
	mw.peering = appendFrame(mw.peering, BlockPeering, body)
}

func (mw *metaWriter) finish() []byte {
	body := binary.AppendUvarint(nil, uint64(mw.summary.Shards))
	body = binary.AppendUvarint(body, uint64(mw.summary.Partitions))
	body = binary.AppendUvarint(body, uint64(mw.summary.Cycles))
	body = binary.AppendUvarint(body, uint64(mw.summary.Rows))
	for _, w := range mw.windows {
		body = appendZigzag(body, int64(w.From))
		body = appendZigzag(body, int64(w.To))
	}
	body = append(body, mw.shards...)
	out := append([]byte(Magic), FormatVersion)
	out = appendFrame(out, BlockMeta, body)
	return append(out, mw.peering...)
}

// partZone is one partition's footer entry in a shard file.
type partZone struct {
	rows     int
	minCycle int
	maxCycle int
}

// entry is one indexed block in a shard file's footer.
type entry struct {
	kind       BlockKind
	dim        store.Dim
	platformID uint32
	nameID     uint32
	part       int
	rows       int
	minCycle   int
	maxCycle   int
	minRTT     float64
	maxRTT     float64
	offset     int
	length     int
}

type shardWriter struct {
	buf     []byte
	dict    []string
	dictIDs map[string]uint32
	parts   []partZone
	entries []entry
}

func newShardWriter(partitions int) *shardWriter {
	return &shardWriter{
		buf:     append([]byte(Magic), FormatVersion),
		dictIDs: map[string]uint32{},
		parts:   make([]partZone, partitions),
	}
}

// intern assigns 1-based dictionary ids in first-use order — the dump
// order is canonical, so ids are deterministic.
func (sw *shardWriter) intern(s string) uint32 {
	if id, ok := sw.dictIDs[s]; ok {
		return id
	}
	sw.dict = append(sw.dict, s)
	id := uint32(len(sw.dict))
	sw.dictIDs[s] = id
	return id
}

func (sw *shardWriter) setPartition(part, rows, minCycle, maxCycle int) {
	sw.parts[part] = partZone{rows: rows, minCycle: minCycle, maxCycle: maxCycle}
}

func (sw *shardWriter) addGroup(part int, dim store.Dim, platform, name string, rtt []float64, cycle []int32) {
	if len(rtt) == 0 {
		return
	}
	pid, nid := sw.intern(platform), sw.intern(name)
	groupMin, groupMax := int(cycle[0]), int(cycle[0])
	for i := 0; i < len(rtt); i += MaxBlockRows {
		end := i + MaxBlockRows
		if end > len(rtt) {
			end = len(rtt)
		}
		blkRTT, blkCyc := rtt[i:end], cycle[i:end]
		minC, maxC := int(blkCyc[0]), int(blkCyc[0])
		for _, c := range blkCyc[1:] {
			if int(c) < minC {
				minC = int(c)
			}
			if int(c) > maxC {
				maxC = int(c)
			}
		}
		if minC < groupMin {
			groupMin = minC
		}
		if maxC > groupMax {
			groupMax = maxC
		}
		offset := len(sw.buf)
		sw.buf = appendFrame(sw.buf, BlockColumn, encodeColumn(blkRTT, blkCyc))
		sw.entries = append(sw.entries, entry{
			kind: BlockColumn, dim: dim, platformID: pid, nameID: nid,
			part: part, rows: end - i, minCycle: minC, maxCycle: maxC,
			minRTT: blkRTT[0], maxRTT: blkRTT[len(blkRTT)-1],
			offset: offset, length: len(sw.buf) - offset,
		})
	}
	sk := sketch.New(sketch.DefaultCompression)
	for _, x := range rtt {
		sk.Add(x)
	}
	offset := len(sw.buf)
	sw.buf = appendFrame(sw.buf, BlockSketch, sk.AppendBinary(nil))
	sw.entries = append(sw.entries, entry{
		kind: BlockSketch, dim: dim, platformID: pid, nameID: nid,
		part: part, rows: len(rtt), minCycle: groupMin, maxCycle: groupMax,
		minRTT: rtt[0], maxRTT: rtt[len(rtt)-1],
		offset: offset, length: len(sw.buf) - offset,
	})
}

// encodeColumn serializes one block's RTT and cycle columns. RTTs come
// in sorted ascending; when their IEEE-754 bit patterns are monotone
// (always true for non-negative values) they delta-code as uvarints,
// otherwise a flag switches the whole block to raw 8-byte values.
func encodeColumn(rtt []float64, cycle []int32) []byte {
	body := binary.AppendUvarint(nil, uint64(len(rtt)))
	raw := false
	prev := math.Float64bits(rtt[0])
	for _, x := range rtt[1:] {
		bits := math.Float64bits(x)
		if bits < prev {
			raw = true
			break
		}
		prev = bits
	}
	if raw {
		body = append(body, 1)
		for _, x := range rtt {
			body = appendFloatBits(body, x)
		}
	} else {
		body = append(body, 0)
		prev = math.Float64bits(rtt[0])
		body = binary.LittleEndian.AppendUint64(body, prev)
		for _, x := range rtt[1:] {
			bits := math.Float64bits(x)
			body = binary.AppendUvarint(body, bits-prev)
			prev = bits
		}
	}
	prevC := int64(cycle[0])
	body = appendZigzag(body, prevC)
	for _, c := range cycle[1:] {
		body = appendZigzag(body, int64(c)-prevC)
		prevC = int64(c)
	}
	return body
}

// finish writes the dictionary, footer and tail, returning the
// complete file image.
func (sw *shardWriter) finish() []byte {
	dictBody := binary.AppendUvarint(nil, uint64(len(sw.dict)))
	for _, s := range sw.dict {
		dictBody = appendString(dictBody, s)
	}
	dictOffset := len(sw.buf)
	sw.buf = appendFrame(sw.buf, BlockDict, dictBody)

	footer := binary.AppendUvarint(nil, uint64(dictOffset))
	footer = binary.AppendUvarint(footer, uint64(len(sw.parts)))
	for _, p := range sw.parts {
		footer = binary.AppendUvarint(footer, uint64(p.rows))
		footer = appendZigzag(footer, int64(p.minCycle))
		footer = appendZigzag(footer, int64(p.maxCycle))
	}
	footer = binary.AppendUvarint(footer, uint64(len(sw.entries)))
	for _, e := range sw.entries {
		footer = append(footer, byte(e.kind), byte(e.dim))
		footer = binary.AppendUvarint(footer, uint64(e.platformID))
		footer = binary.AppendUvarint(footer, uint64(e.nameID))
		footer = binary.AppendUvarint(footer, uint64(e.part))
		footer = binary.AppendUvarint(footer, uint64(e.rows))
		footer = appendZigzag(footer, int64(e.minCycle))
		footer = appendZigzag(footer, int64(e.maxCycle))
		footer = appendFloatBits(footer, e.minRTT)
		footer = appendFloatBits(footer, e.maxRTT)
		footer = binary.AppendUvarint(footer, uint64(e.offset))
		footer = binary.AppendUvarint(footer, uint64(e.length))
	}
	footerOffset := len(sw.buf)
	sw.buf = appendFrame(sw.buf, BlockFooter, footer)

	tail := binary.LittleEndian.AppendUint64(nil, uint64(footerOffset))
	crc := crc32Of(tail)
	tail = binary.LittleEndian.AppendUint32(tail, crc)
	tail = append(tail, tailMagic...)
	return append(sw.buf, tail...)
}
