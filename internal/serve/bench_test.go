package serve_test

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve"
)

// BenchmarkServeCachedVsCold compares a repeat query answered from the
// LRU cache against one that must re-run the shard fan-out + merge.
func BenchmarkServeCachedVsCold(b *testing.B) {
	st, _, _ := fixture(b)
	srv := serve.New(st, serve.Options{})
	h := srv.Handler()
	get := func(path string) int {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec.Code
	}

	b.Run("Cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			srv.InvalidateCache()
			if code := get("/v1/latency-map"); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})
	b.Run("Cached", func(b *testing.B) {
		get("/v1/latency-map") // warm the cache once
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if code := get("/v1/latency-map"); code != http.StatusOK {
				b.Fatalf("status %d", code)
			}
		}
	})
}
