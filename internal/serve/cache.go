package serve

import (
	"container/list"
	"sync"
)

// computed is one materialized response body: what the singleflight
// group produces and the LRU cache retains.
type computed struct {
	body        []byte
	etag        string
	contentType string
	epoch       uint64 // store epoch the body was computed against
	err         error
}

// lruCache is a bounded, thread-safe LRU over canonicalized query keys.
type lruCache struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recent; values are *cacheItem
	items     map[string]*list.Element
	evictions uint64
}

type cacheItem struct {
	key string
	res computed
}

func newLRUCache(capacity int) *lruCache {
	return &lruCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *lruCache) get(key string) (computed, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return computed{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheItem).res, true
}

func (c *lruCache) put(key string, res computed) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheItem).res = res
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, res: res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheItem).key)
		c.evictions++
	}
}

func (c *lruCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[string]*list.Element{}
}

func (c *lruCache) stats() (entries int, capacity int, evictions uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.cap, c.evictions
}
