package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/load"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

// TestChaosLiveResealUnderLoad is the zero-drop proof: 1024 concurrent
// clients hammer the API through the load harness while the store is
// live-swapped between two different datasets every few milliseconds.
// The run must finish with
//
//   - zero anomalies — every response is 200, 304, 429 or 503, nothing
//     else (no 500s, no timeouts, no torn reads);
//   - zero mixed-epoch bodies — every 200 body is byte-identical to
//     the canonical body of the store its X-Store-Epoch names;
//   - at least two store epochs observed by the clients;
//   - the hedge, quota, shed and swap counters visible on /v1/metricsz.
func TestChaosLiveResealUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	_, ds, processed := fixture(t)
	// Both stores share the registry (hedge counters intern once) and
	// hedge aggressively so the fan-out's recovery path runs under load.
	hedge := store.HedgeOptions{Enabled: true, Delay: 300 * time.Microsecond}
	stA := store.FromDataset(ds, processed, store.Options{Shards: 4, Obs: reg, Hedge: hedge})
	stB := altStore(store.Options{Shards: 4, Obs: reg, Hedge: hedge})

	// Canonical bodies per store for every path in the chaos mix. The
	// stores are sealed and the queries deterministic, so each (store,
	// path) pair has exactly one 200 body.
	endpoints := load.DefaultEndpoints()
	canon := map[string]string{} // body → "A" or "B"
	for name, st := range map[string]serve.Querier{"A": stA, "B": stB} {
		h := serve.New(st, serve.Options{}).Handler()
		for _, ep := range endpoints {
			rec := doGet(h, ep.Path, nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("canonical GET %s on %s = %d", ep.Path, name, rec.Code)
			}
			body := rec.Body.String()
			if prev, dup := canon[body]; dup && prev != name {
				t.Fatalf("stores A and B share a body for %s; torn-store detection would be blind", ep.Path)
			}
			canon[body] = name
		}
	}

	// Epoch parity: the server mounts A as epoch 1 and the swap loop
	// alternates B, A, B, ... — odd epochs are A, even are B.
	storeFor := func(epoch string) string {
		n, err := strconv.ParseUint(epoch, 10, 64)
		if err != nil || n == 0 {
			return ""
		}
		if n%2 == 1 {
			return "A"
		}
		return "B"
	}

	srv := serve.New(stA, serve.Options{Obs: reg})
	h := srv.Handler()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	loadDone := make(chan struct{})
	swapsDone := make(chan int)
	go func() {
		swaps := 0
		next := []serve.Querier{stB, stA}
		for {
			select {
			case <-loadDone:
				swapsDone <- swaps
				return
			case <-time.After(3 * time.Millisecond):
				srv.Swap(next[swaps%2])
				swaps++
			}
		}
	}()

	res, err := load.Run(ctx, "http://chaos", load.HandlerClient{Handler: h}, load.Options{
		Clients:           1024,
		RequestsPerClient: 4,
		Endpoints:         endpoints,
		Seed:              7,
		Obs:               reg,
		Validate: func(status int, epoch string, _ http.Header, body []byte) error {
			if status != http.StatusOK {
				return nil // 304 has no body; 429/503 are admission, not data
			}
			want := storeFor(epoch)
			if want == "" {
				return fmt.Errorf("200 with unparseable X-Store-Epoch %q", epoch)
			}
			got, known := canon[string(body)]
			if !known {
				return fmt.Errorf("epoch %s: body matches neither store (torn read?): %.80s", epoch, body)
			}
			if got != want {
				return fmt.Errorf("mixed epoch: X-Store-Epoch %s (store %s) served store %s's body", epoch, want, got)
			}
			return nil
		},
	})
	close(loadDone)
	swaps := <-swapsDone
	if err != nil {
		t.Fatal(err)
	}

	if res.Requests != 1024*4 {
		t.Errorf("requests = %d, want %d", res.Requests, 1024*4)
	}
	if res.AnomalyCount != 0 {
		t.Errorf("%d anomalies under chaos (first %d: %v)", res.AnomalyCount, len(res.Anomalies), res.Anomalies)
	}
	for code := range res.Status {
		switch code {
		case http.StatusOK, http.StatusNotModified, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		default:
			t.Errorf("status %d appeared under chaos: %v", code, res.Status)
		}
	}
	if res.Status[http.StatusOK] == 0 {
		t.Error("no 200s at all; the chaos run never exercised the data path")
	}
	if len(res.Epochs) < 2 {
		t.Errorf("epochs observed = %v (%d swaps fired); a live re-seal run must span at least 2", res.Epochs, swaps)
	}
	if swaps == 0 {
		t.Error("swap loop never fired; the run was not a re-seal chaos test")
	}

	// The robustness counters must all be scrapeable on /v1/metricsz.
	body := doGet(h, "/v1/metricsz", nil).Body.String()
	for _, name := range []string{
		"store_hedges_fired_total",
		"store_hedges_won_total",
		"admit_quota_denied_total",
		"admit_shed_total",
		"admit_in_flight",
		"serve_store_swaps_total",
		"serve_store_epoch",
		"loadgen_requests_total",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metricsz missing %s after the chaos run", name)
		}
	}
	if !strings.Contains(body, fmt.Sprintf("serve_store_swaps_total %d", swaps)) {
		t.Errorf("metricsz swap counter disagrees with the %d swaps fired", swaps)
	}
}
