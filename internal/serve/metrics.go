package serve

import (
	"time"

	"repro/internal/obs"
)

// endpointInstruments is one endpoint's interned slice of the obs
// registry. The old hand-rolled atomic-counter struct this replaces
// lived only inside serve; registering the same numbers as labeled
// instruments puts them on /v1/metricsz while /v1/statsz keeps
// rendering them under its historical JSON keys.
type endpointInstruments struct {
	requests    *obs.Counter
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	notModified *obs.Counter
	coalesced   *obs.Counter
	errors      *obs.Counter
	inFlight    *obs.Gauge
	latency     *obs.Histogram // milliseconds
	maxNs       *obs.Gauge     // slowest request, nanoseconds
}

func (m *endpointInstruments) observe(d time.Duration) {
	m.latency.Observe(float64(d) / float64(time.Millisecond))
	m.maxNs.SetMax(d.Nanoseconds())
}

// EndpointStats is the JSON form of one endpoint's counters. The keys
// predate the obs registry and are load-bearing for statsz consumers,
// so they stay exactly as they were.
type EndpointStats struct {
	Requests      uint64  `json:"requests"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	NotModified   uint64  `json:"not_modified"`
	Coalesced     uint64  `json:"coalesced"`
	Errors        uint64  `json:"errors"`
	InFlight      int64   `json:"in_flight"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	MaxLatencyUs  float64 `json:"max_latency_us"`
}

func (m *endpointInstruments) snapshot() EndpointStats {
	s := EndpointStats{
		Requests:     m.requests.Load(),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		NotModified:  m.notModified.Load(),
		Coalesced:    m.coalesced.Load(),
		Errors:       m.errors.Load(),
		InFlight:     m.inFlight.Load(),
		MaxLatencyUs: float64(m.maxNs.Load()) / 1e3,
	}
	if n := m.latency.Count(); n > 0 {
		s.MeanLatencyUs = m.latency.Sum() * 1e3 / float64(n) // ms → µs
	}
	return s
}

// metricSet is the fixed endpoint → instruments table; endpoints
// register at construction (interning every instrument once), so the
// request path does one read-only map lookup and atomic adds.
type metricSet struct {
	endpoints map[string]*endpointInstruments
}

func newMetricSet(reg *obs.Registry, names ...string) *metricSet {
	ms := &metricSet{endpoints: map[string]*endpointInstruments{}}
	for _, n := range names {
		ms.endpoints[n] = &endpointInstruments{
			requests:    reg.Counter("serve_requests_total", "endpoint", n),
			cacheHits:   reg.Counter("serve_cache_hits_total", "endpoint", n),
			cacheMisses: reg.Counter("serve_cache_misses_total", "endpoint", n),
			notModified: reg.Counter("serve_not_modified_total", "endpoint", n),
			coalesced:   reg.Counter("serve_coalesced_total", "endpoint", n),
			errors:      reg.Counter("serve_errors_total", "endpoint", n),
			inFlight:    reg.Gauge("serve_in_flight", "endpoint", n),
			latency:     reg.Histogram("serve_request_ms", obs.LatencyBuckets, "endpoint", n),
			maxNs:       reg.Gauge("serve_request_max_ns", "endpoint", n),
		}
	}
	return ms
}

func (ms *metricSet) of(endpoint string) *endpointInstruments {
	return ms.endpoints[endpoint]
}

func (ms *metricSet) snapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(ms.endpoints))
	for name, m := range ms.endpoints {
		out[name] = m.snapshot()
	}
	return out
}
