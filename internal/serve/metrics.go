package serve

import (
	"sync/atomic"
	"time"
)

// endpointMetrics holds lock-free per-endpoint counters.
type endpointMetrics struct {
	requests    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	notModified atomic.Uint64
	coalesced   atomic.Uint64
	errors      atomic.Uint64
	inFlight    atomic.Int64
	latencyNs   atomic.Int64
	maxNs       atomic.Int64
}

func (m *endpointMetrics) observe(d time.Duration) {
	ns := d.Nanoseconds()
	m.latencyNs.Add(ns)
	for {
		cur := m.maxNs.Load()
		if ns <= cur || m.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// EndpointStats is the JSON form of one endpoint's counters.
type EndpointStats struct {
	Requests      uint64  `json:"requests"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	NotModified   uint64  `json:"not_modified"`
	Coalesced     uint64  `json:"coalesced"`
	Errors        uint64  `json:"errors"`
	InFlight      int64   `json:"in_flight"`
	MeanLatencyUs float64 `json:"mean_latency_us"`
	MaxLatencyUs  float64 `json:"max_latency_us"`
}

func (m *endpointMetrics) snapshot() EndpointStats {
	s := EndpointStats{
		Requests:     m.requests.Load(),
		CacheHits:    m.cacheHits.Load(),
		CacheMisses:  m.cacheMisses.Load(),
		NotModified:  m.notModified.Load(),
		Coalesced:    m.coalesced.Load(),
		Errors:       m.errors.Load(),
		InFlight:     m.inFlight.Load(),
		MaxLatencyUs: float64(m.maxNs.Load()) / 1e3,
	}
	if s.Requests > 0 {
		s.MeanLatencyUs = float64(m.latencyNs.Load()) / float64(s.Requests) / 1e3
	}
	return s
}

// metricSet is the fixed endpoint → counters table; endpoints register
// at construction, so lookups afterwards are read-only.
type metricSet struct {
	endpoints map[string]*endpointMetrics
}

func newMetricSet(names ...string) *metricSet {
	ms := &metricSet{endpoints: map[string]*endpointMetrics{}}
	for _, n := range names {
		ms.endpoints[n] = &endpointMetrics{}
	}
	return ms
}

func (ms *metricSet) of(endpoint string) *endpointMetrics {
	return ms.endpoints[endpoint]
}

func (ms *metricSet) snapshot() map[string]EndpointStats {
	out := make(map[string]EndpointStats, len(ms.endpoints))
	for name, m := range ms.endpoints {
		out[name] = m.snapshot()
	}
	return out
}
