// Package serve exposes a sealed measurement store as an HTTP query
// service: the paper's headline figures as versioned endpoints with
// request coalescing (one store query per key no matter how many
// concurrent identical requests arrive), a bounded LRU response cache
// with ETag revalidation, JSON/NDJSON content negotiation, per-request
// timeouts and graceful drain on shutdown.
//
// Three robustness layers stand between the listener and the store
// (DESIGN.md §11):
//
//   - Admission control (internal/admit): a global concurrency ceiling
//     sheds excess load with 503 before the TimeoutHandler can burn a
//     worker on it, and per-client token buckets answer 429 with
//     Retry-After once a client outruns its quota.
//   - The store behind the server is swappable while serving: Swap
//     atomically replaces the Querier and bumps the store epoch; cache
//     keys, singleflight keys and ETags all carry the epoch, so a
//     request observes exactly one store and a stale If-None-Match can
//     never be confirmed with a 304 after a swap.
//   - Liveness and readiness are split: /v1/healthz answers as long as
//     the process runs, /v1/readyz answers 200 only while a store is
//     mounted, admission is initialized and the server is not
//     draining — and graceful drain flips readiness first, so load
//     balancers stop routing before the listener closes.
//
// Endpoints:
//
//	/v1/latency-map    Figure 3: per-country median RTT map
//	/v1/cdf            Figure 4: per-continent latency CDFs
//	/v1/platform-diff  Figure 5: Speedchecker − Atlas percentile diffs
//	/v1/peering-shares Figure 10: interconnection class shares
//	/v1/changepoint    country×provider pairs ranked by RTT shift across a cycle
//	/v1/healthz        liveness (process up; bypasses admission)
//	/v1/readyz         readiness (store mounted, not draining; bypasses admission)
//	/v1/statsz         cache, store and per-endpoint counters (JSON)
//	/v1/metricsz       the obs registry, text exposition (bypasses admission)
//	/v1/tracez         recent spans and per-stage latency rollups
//
// With Options.EnablePprof the standard /debug/pprof/ endpoints mount
// alongside /v1, outside the per-request timeout (profiles stream for
// longer than any query is allowed to run).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/analysis"
	"repro/internal/obs"
	"repro/internal/store"
)

// Querier is the store surface the server needs. *store.Store satisfies
// it; tests wrap it to count underlying queries. Every figure query has
// a windowed variant restricting it to a half-open cycle interval on
// the campaign time axis; handlers call the unwindowed form when the
// request carries no from/to, so wrappers that intercept only the
// legacy methods keep seeing the default traffic.
type Querier interface {
	LatencyMap(minSamples int) []analysis.CountryLatency
	ContinentCDFs(platform string) []analysis.ContinentDistribution
	PlatformDiff() []analysis.PlatformDiff
	PeeringShares() []analysis.InterconnectShare
	LatencyMapWindow(minSamples int, w store.Window) []analysis.CountryLatency
	ContinentCDFsWindow(platform string, w store.Window) []analysis.ContinentDistribution
	PlatformDiffWindow(w store.Window) []analysis.PlatformDiff
	PeeringSharesWindow(w store.Window) []analysis.InterconnectShare
	Changepoint(platform string, at, width int) []store.ChangepointEntry
	Summary() store.Summary
}

// Options tunes the server.
type Options struct {
	// CacheEntries bounds the LRU response cache (default 256).
	CacheEntries int
	// Timeout bounds each request end-to-end (default 5s).
	Timeout time.Duration
	// MinMapSamples is the default per-country sample floor of
	// /v1/latency-map when the request has no min parameter (default 10).
	MinMapSamples int
	// CDFPoints is the default curve resolution of /v1/cdf (default 64).
	CDFPoints int
	// Obs is the registry behind /v1/metricsz and the per-endpoint
	// counters in /v1/statsz. Share the campaign's registry here and one
	// scrape shows the whole spine. Nil gets a private registry, so the
	// endpoints work either way.
	Obs *obs.Registry
	// Tracer makes every request record a "serve.query" span and backs
	// /v1/tracez. Nil disables spans; /v1/tracez then serves an empty
	// (but well-formed) payload.
	Tracer *obs.Tracer
	// StoreMode labels the Querier backing in /v1/statsz — "memory" for
	// an in-process sealed store, "segments" / "segments-exact" for an
	// mmap-backed segment directory. Purely informational; empty omits
	// the field.
	StoreMode string
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints expose internals and should be opted
	// into per deployment.
	EnablePprof bool
	// Admit configures admission control. The zero value enables both
	// layers with the admit defaults (per-client 100 req/s with a 200
	// burst, 1024 requests in flight); set RatePerSec or MaxInFlight
	// negative to disable a layer. Obs and Clock are filled in by the
	// server when unset.
	Admit admit.Options
}

func (o Options) withDefaults() Options {
	if o.CacheEntries <= 0 {
		o.CacheEntries = 256
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MinMapSamples <= 0 {
		o.MinMapSamples = 10
	}
	if o.CDFPoints <= 0 {
		o.CDFPoints = 64
	}
	return o
}

// maxCDFPoints bounds the points parameter so one request cannot ask
// for an absurd curve.
const maxCDFPoints = 4096

// epochStore pairs a store with the epoch it was mounted under. One
// atomic load hands a request both halves, so a request can never
// observe store A with epoch B — the pair is immutable after Swap.
type epochStore struct {
	q     Querier
	epoch uint64
}

// Server answers the /v1 API over a swappable Querier.
type Server struct {
	cur      atomic.Pointer[epochStore]
	epoch    atomic.Uint64
	draining atomic.Bool
	opts     Options
	reg      *obs.Registry
	tracer   *obs.Tracer
	cache    *lruCache
	flights  *flightGroup
	metrics  *metricSet
	admit    *admit.Controller
	mSwaps   *obs.Counter
	gEpoch   *obs.Gauge
	start    time.Time
}

// New builds a server over q, mounted as store epoch 1.
func New(q Querier, opts Options) *Server {
	opts = opts.withDefaults()
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		opts:    opts,
		reg:     reg,
		tracer:  opts.Tracer,
		cache:   newLRUCache(opts.CacheEntries),
		flights: newFlightGroup(),
		metrics: newMetricSet(reg, "latency-map", "cdf", "platform-diff", "peering-shares",
			"changepoint", "healthz", "readyz", "statsz", "metricsz", "tracez"),
		mSwaps: reg.Counter("serve_store_swaps_total"),
		gEpoch: reg.Gauge("serve_store_epoch"),
		start:  time.Now(),
	}
	ao := opts.Admit
	ao.Obs = reg
	if ao.Clock == nil {
		// Admission never reads the wall clock itself; the HTTP layer
		// (norawtime-exempt) hands it a monotonic stopwatch.
		ao.Clock = func() time.Duration { return time.Since(s.start) }
	}
	s.admit = admit.New(ao)
	s.epoch.Store(1)
	s.gEpoch.Set(1)
	s.cur.Store(&epochStore{q: q, epoch: 1})
	// Cache occupancy and evictions live in the LRU; expose them as
	// callbacks rather than mirroring every put.
	reg.GaugeFunc("serve_cache_entries", func() float64 {
		entries, _, _ := s.cache.stats()
		return float64(entries)
	})
	reg.GaugeFunc("serve_cache_evictions", func() float64 {
		_, _, evictions := s.cache.stats()
		return float64(evictions)
	})
	return s
}

// Swap atomically replaces the served store and returns the new epoch.
// In-flight requests finish against the store they loaded at entry;
// every later request sees the new pair. The response cache is purged
// (old-epoch entries are unreachable anyway — keys carry the epoch —
// but holding dead bodies in the LRU would waste its capacity), and
// because ETags embed the epoch, a client revalidating a pre-swap ETag
// always receives a full 200 with the new body, never a stale 304.
//
// Swap is the live re-seal hook: a new campaign streams into a fresh
// store.Feed while this server keeps answering from the sealed store,
// and the finished seal is mounted here with zero dropped requests.
func (s *Server) Swap(q Querier) uint64 {
	epoch := s.epoch.Add(1)
	s.cur.Store(&epochStore{q: q, epoch: epoch})
	s.cache.purge()
	s.mSwaps.Inc()
	s.gEpoch.Set(int64(epoch))
	return epoch
}

// Epoch returns the current store epoch.
func (s *Server) Epoch() uint64 { return s.epoch.Load() }

// current returns the mounted (store, epoch) pair.
func (s *Server) current() *epochStore { return s.cur.Load() }

// InvalidateCache drops every cached response — the hook an
// incremental-ingest path (or a benchmark) uses without swapping
// stores. Swap already purges internally.
func (s *Server) InvalidateCache() { s.cache.purge() }

// BeginDrain marks the server as draining: /v1/readyz starts answering
// 503 so load balancers route new traffic elsewhere, while in-flight
// and straggler requests keep being served until the listener closes.
// Drain is one-way; a draining server never becomes ready again.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Ready reports whether the server would answer /v1/readyz with 200.
func (s *Server) Ready() bool {
	return !s.draining.Load() && s.cur.Load() != nil && s.admit != nil
}

// InFlight exposes the admission layer's live concurrency gauge — the
// signal the store's adaptive hedge gate reads (store.HedgeOptions.
// InFlight), so a saturated server stops duplicating shard queries.
func (s *Server) InFlight() int64 { return s.admit.InFlight() }

// Handler returns the routed HTTP handler. The data endpoints sit
// behind admission control and the per-request timeout, in that order:
// the concurrency ceiling sheds with a cheap 503 *before* the
// TimeoutHandler allocates a worker to the request. The control
// endpoints (healthz, readyz, metricsz) bypass both — an operator must
// be able to probe and scrape a saturated server — as do the pprof
// endpoints when enabled (a 30-second CPU profile must outlive a
// 5-second query budget).
func (s *Server) Handler() http.Handler {
	data := http.NewServeMux()
	data.HandleFunc("/v1/latency-map", s.handleLatencyMap)
	data.HandleFunc("/v1/cdf", s.handleCDF)
	data.HandleFunc("/v1/platform-diff", s.handlePlatformDiff)
	data.HandleFunc("/v1/peering-shares", s.handlePeeringShares)
	data.HandleFunc("/v1/changepoint", s.handleChangepoint)
	data.HandleFunc("/v1/statsz", s.handleStatsz)
	data.HandleFunc("/v1/tracez", s.handleTracez)
	api := s.withAdmission(http.TimeoutHandler(s.withTrace(data), s.opts.Timeout, `{"error":"request timed out"}`))

	outer := http.NewServeMux()
	outer.Handle("/", api)
	outer.HandleFunc("/v1/healthz", s.handleHealthz)
	outer.HandleFunc("/v1/readyz", s.handleReadyz)
	outer.HandleFunc("/v1/metricsz", s.handleMetricsz)
	if s.opts.EnablePprof {
		outer.HandleFunc("/debug/pprof/", pprof.Index)
		outer.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		outer.HandleFunc("/debug/pprof/profile", pprof.Profile)
		outer.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		outer.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return outer
}

// withAdmission wraps the data endpoints with the two admission
// layers: the global concurrency ceiling (503, shed) and the
// per-client token bucket (429, Retry-After). The client key is the
// X-Client-ID header when present — multiplexed proxies can pass
// through end-client identity — else the remote host.
func (s *Server) withAdmission(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		release, ok := s.admit.Acquire()
		if !ok {
			w.Header().Set("Content-Type", ctJSON)
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, `{"error":"server overloaded, request shed"}`)
			return
		}
		defer release()
		if ok, retry := s.admit.Allow(clientKey(r)); !ok {
			w.Header().Set("Content-Type", ctJSON)
			w.Header().Set("Retry-After", retryAfterSeconds(retry))
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprintln(w, `{"error":"client quota exhausted"}`)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// clientKey identifies the client for quota accounting.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds renders a Retry-After value: whole seconds,
// rounded up, at least 1 (a zero Retry-After invites an instant retry
// storm).
func retryAfterSeconds(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// withTrace wraps the API mux so every request runs under a
// "serve.query" span recorded into the server's tracer. Without a
// tracer the handler is returned unwrapped — zero per-request cost.
func (s *Server) withTrace(h http.Handler) http.Handler {
	if s.tracer == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx := obs.ContextWithTracer(r.Context(), s.tracer)
		ctx, span := obs.StartSpan(ctx, "serve.query")
		span.SetAttr("path", r.URL.Path)
		defer span.End()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// ---- DTOs ----
// The wire forms mirror the analysis structs field-for-field but spell
// enums as strings, so responses are self-describing without the Go
// type definitions.

// LatencyMapEntry is the wire form of analysis.CountryLatency.
type LatencyMapEntry struct {
	Country   string  `json:"country"`
	Continent string  `json:"continent"`
	MedianMs  float64 `json:"median_ms"`
	CILowMs   float64 `json:"ci_low_ms"`
	CIHighMs  float64 `json:"ci_high_ms"`
	Band      string  `json:"band"`
	Samples   int     `json:"samples"`
}

// LatencyMapDTO converts batch analysis output to the wire form.
func LatencyMapDTO(entries []analysis.CountryLatency) []LatencyMapEntry {
	out := make([]LatencyMapEntry, len(entries))
	for i, e := range entries {
		out[i] = LatencyMapEntry{
			Country: e.Country, Continent: e.Continent.String(),
			MedianMs: e.MedianMs, CILowMs: e.CILowMs, CIHighMs: e.CIHighMs,
			Band: e.Band.String(), Samples: e.Samples,
		}
	}
	return out
}

// CDFEntry is the wire form of analysis.ContinentDistribution: the
// curve sampled at a fixed number of points plus the QoE fractions.
type CDFEntry struct {
	Continent string       `json:"continent"`
	N         int          `json:"n"`
	UnderMTP  float64      `json:"under_mtp"`
	UnderHPL  float64      `json:"under_hpl"`
	UnderHRT  float64      `json:"under_hrt"`
	Series    [][2]float64 `json:"series"` // (rtt_ms, P(X≤rtt)) pairs
}

// CDFDTO converts batch analysis output to the wire form.
func CDFDTO(dists []analysis.ContinentDistribution, points int) []CDFEntry {
	out := make([]CDFEntry, len(dists))
	for i, d := range dists {
		out[i] = CDFEntry{
			Continent: d.Continent.String(), N: d.N,
			UnderMTP: d.UnderMTP, UnderHPL: d.UnderHPL, UnderHRT: d.UnderHRT,
			Series: d.CDF.Series(points),
		}
	}
	return out
}

// PlatformDiffEntry is the wire form of analysis.PlatformDiff.
type PlatformDiffEntry struct {
	Continent        string    `json:"continent"`
	DiffsMs          []float64 `json:"diffs_ms"`
	AtlasFasterShare float64   `json:"atlas_faster_share"`
	NSpeedchecker    int       `json:"n_speedchecker"`
	NAtlas           int       `json:"n_atlas"`
}

// PlatformDiffDTO converts batch analysis output to the wire form.
func PlatformDiffDTO(diffs []analysis.PlatformDiff) []PlatformDiffEntry {
	out := make([]PlatformDiffEntry, len(diffs))
	for i, d := range diffs {
		out[i] = PlatformDiffEntry{
			Continent: d.Continent.String(), DiffsMs: d.Diffs,
			AtlasFasterShare: d.AtlasFasterShare,
			NSpeedchecker:    d.NSC, NAtlas: d.NAtlas,
		}
	}
	return out
}

// PeeringShareEntry is the wire form of analysis.InterconnectShare.
type PeeringShareEntry struct {
	Provider   string  `json:"provider"`
	DirectPct  float64 `json:"direct_pct"`
	OneASPct   float64 `json:"one_as_pct"`
	MultiASPct float64 `json:"multi_as_pct"`
	N          int     `json:"n"`
}

// PeeringSharesDTO converts batch analysis output to the wire form.
func PeeringSharesDTO(shares []analysis.InterconnectShare) []PeeringShareEntry {
	out := make([]PeeringShareEntry, len(shares))
	for i, sh := range shares {
		out[i] = PeeringShareEntry{
			Provider: sh.Provider, DirectPct: sh.DirectPct,
			OneASPct: sh.OneASPct, MultiASPct: sh.MultiASPct, N: sh.N,
		}
	}
	return out
}

// Statsz is the /v1/statsz payload.
type Statsz struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	StoreEpoch    uint64  `json:"store_epoch"`
	Ready         bool    `json:"ready"`
	// StoreMode names the backing of the mounted Querier when the
	// operator declared one ("memory", "segments", "segments-exact");
	// empty when unset.
	StoreMode string                   `json:"store_mode,omitempty"`
	Store     store.Summary            `json:"store"`
	Cache         CacheStats               `json:"cache"`
	Endpoints     map[string]EndpointStats `json:"endpoints"`
}

// CacheStats describes the response cache.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Evictions uint64 `json:"evictions"`
}

// ---- handlers ----

func (s *Server) handleLatencyMap(w http.ResponseWriter, r *http.Request) {
	minSamples := s.opts.MinMapSamples
	if err := intParam(r.URL.Query(), "min", 1, 1<<30, &minSamples); err != nil {
		s.badRequest(w, "latency-map", err)
		return
	}
	win, err := windowParam(r.URL.Query())
	if err != nil {
		s.badRequest(w, "latency-map", err)
		return
	}
	key := fmt.Sprintf("min=%d&%s", minSamples, windowKey(win))
	s.respond(w, r, "latency-map", key, func(q Querier) (any, error) {
		if win.All() {
			return LatencyMapDTO(q.LatencyMap(minSamples)), nil
		}
		return LatencyMapDTO(q.LatencyMapWindow(minSamples, win)), nil
	})
}

func (s *Server) handleCDF(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	platform, err := platformParam(q)
	if err != nil {
		s.badRequest(w, "cdf", err)
		return
	}
	points := s.opts.CDFPoints
	if err := intParam(q, "points", 2, maxCDFPoints, &points); err != nil {
		s.badRequest(w, "cdf", err)
		return
	}
	continent := strings.ToUpper(q.Get("continent"))
	if continent != "" {
		if _, perr := parseContinent(continent); perr != nil {
			s.badRequest(w, "cdf", perr)
			return
		}
	}
	win, err := windowParam(q)
	if err != nil {
		s.badRequest(w, "cdf", err)
		return
	}
	key := fmt.Sprintf("platform=%s&continent=%s&points=%d&%s", platform, continent, points, windowKey(win))
	s.respond(w, r, "cdf", key, func(q Querier) (any, error) {
		var dists []analysis.ContinentDistribution
		if win.All() {
			dists = q.ContinentCDFs(platform)
		} else {
			dists = q.ContinentCDFsWindow(platform, win)
		}
		if continent != "" {
			kept := dists[:0:0]
			for _, d := range dists {
				if d.Continent.String() == continent {
					kept = append(kept, d)
				}
			}
			dists = kept
		}
		return CDFDTO(dists, points), nil
	})
}

func (s *Server) handlePlatformDiff(w http.ResponseWriter, r *http.Request) {
	win, err := windowParam(r.URL.Query())
	if err != nil {
		s.badRequest(w, "platform-diff", err)
		return
	}
	s.respond(w, r, "platform-diff", windowKey(win), func(q Querier) (any, error) {
		if win.All() {
			return PlatformDiffDTO(q.PlatformDiff()), nil
		}
		return PlatformDiffDTO(q.PlatformDiffWindow(win)), nil
	})
}

func (s *Server) handlePeeringShares(w http.ResponseWriter, r *http.Request) {
	win, err := windowParam(r.URL.Query())
	if err != nil {
		s.badRequest(w, "peering-shares", err)
		return
	}
	s.respond(w, r, "peering-shares", windowKey(win), func(q Querier) (any, error) {
		if win.All() {
			return PeeringSharesDTO(q.PeeringShares()), nil
		}
		return PeeringSharesDTO(q.PeeringSharesWindow(win)), nil
	})
}

// handleChangepoint serves the longitudinal event detector: every
// country×provider pair ranked by how much its RTT distribution shifted
// across the split cycle `at` (default: the campaign midpoint, where
// the scenario plane schedules its events). `width` bounds each side's
// comparison window to that many cycles; zero compares everything
// before against everything after. The store's entries are already
// wire-shaped, so no DTO conversion is needed.
func (s *Server) handleChangepoint(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	platform, err := platformParam(q)
	if err != nil {
		s.badRequest(w, "changepoint", err)
		return
	}
	at, width := 0, 0
	if err := intParam(q, "at", 1, 1<<30, &at); err != nil {
		s.badRequest(w, "changepoint", err)
		return
	}
	if err := intParam(q, "width", 1, 1<<30, &width); err != nil {
		s.badRequest(w, "changepoint", err)
		return
	}
	key := fmt.Sprintf("platform=%s&at=%d&width=%d", platform, at, width)
	s.respond(w, r, "changepoint", key, func(q Querier) (any, error) {
		split := at
		if split <= 0 {
			if c := q.Summary().Cycles; c > 1 {
				split = c / 2
			} else {
				split = 1
			}
		}
		return q.Changepoint(platform, split, width), nil
	})
}

// handleHealthz is pure liveness: it answers 200 as long as the
// process can run a handler, even while draining or swapping — restart
// decisions must not be coupled to routing decisions.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.of("healthz").requests.Inc()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, `{"status":"ok"}`)
}

// handleReadyz is routability: 200 only while a store is mounted,
// admission is initialized and the server is not draining. Graceful
// shutdown flips this to 503 before the listener closes, so load
// balancers drain the instance instead of surfacing connection resets.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.metrics.of("readyz").requests.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintf(w, "{\"status\":\"ready\",\"epoch\":%d}\n", s.epoch.Load())
}

// handleMetricsz serves the registry's text exposition. Telemetry is a
// point-in-time reading: no ETag, Cache-Control forbids storing, so a
// scraper can never be handed a stale snapshot by an intermediary.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	s.metrics.of("metricsz").requests.Inc()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	s.reg.WriteMetrics(w)
}

// handleTracez serves the recent spans and per-stage latency rollups.
func (s *Server) handleTracez(w http.ResponseWriter, r *http.Request) {
	s.metrics.of("tracez").requests.Inc()
	body, err := json.Marshal(s.tracer.Export())
	if err != nil {
		http.Error(w, `{"error":"marshal failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	w.Write(append(body, '\n'))
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	s.metrics.of("statsz").requests.Inc()
	entries, capacity, evictions := s.cache.stats()
	es := s.current()
	payload := Statsz{
		UptimeSeconds: time.Since(s.start).Seconds(),
		StoreEpoch:    es.epoch,
		Ready:         s.Ready(),
		StoreMode:     s.opts.StoreMode,
		Store:         es.q.Summary(),
		Cache:         CacheStats{Entries: entries, Capacity: capacity, Evictions: evictions},
		Endpoints:     s.metrics.snapshot(),
	}
	body, err := json.Marshal(payload)
	if err != nil {
		http.Error(w, `{"error":"marshal failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// ---- request plumbing ----

const (
	ctJSON   = "application/json"
	ctNDJSON = "application/x-ndjson"
)

// negotiate picks the response encoding: NDJSON when the client asks
// for it via Accept, JSON otherwise.
func negotiate(r *http.Request) string {
	if strings.Contains(r.Header.Get("Accept"), ctNDJSON) {
		return ctNDJSON
	}
	return ctJSON
}

// respond runs the cached/coalesced read path: canonical key → LRU →
// singleflight compute → encode → cache, with ETag revalidation at
// every exit. The (store, epoch) pair is loaded exactly once per
// request — the compute closure runs against that snapshot, and the
// epoch prefixes the cache and singleflight keys, so concurrent
// requests racing a Swap coalesce per-epoch and each one's cache
// entry, ETag and X-Store-Epoch all describe the same store.
func (s *Server) respond(w http.ResponseWriter, r *http.Request, endpoint, params string, compute func(q Querier) (any, error)) {
	m := s.metrics.of(endpoint)
	m.requests.Inc()
	m.inFlight.Add(1)
	started := time.Now()
	defer func() {
		m.inFlight.Add(-1)
		m.observe(time.Since(started))
	}()

	es := s.current()
	contentType := negotiate(r)
	key := fmt.Sprintf("e%d:%s?%s&ct=%s", es.epoch, endpoint, params, contentType)

	if res, ok := s.cache.get(key); ok {
		m.cacheHits.Inc()
		s.write(w, r, m, res, "hit")
		return
	}
	m.cacheMisses.Inc()
	res, shared := s.flights.do(key, func() computed {
		v, err := compute(es.q)
		if err != nil {
			return computed{err: err}
		}
		body, err := encode(v, contentType)
		if err != nil {
			return computed{err: err}
		}
		res := computed{body: body, etag: etagOf(es.epoch, key, body), contentType: contentType, epoch: es.epoch}
		s.cache.put(key, res)
		return res
	})
	if shared {
		m.coalesced.Inc()
	}
	if res.err != nil {
		m.errors.Inc()
		http.Error(w, `{"error":"internal query failure"}`, http.StatusInternalServerError)
		return
	}
	s.write(w, r, m, res, "miss")
}

// write emits one computed response, honouring If-None-Match. The ETag
// embeds the store epoch, so a conditional request made before a Swap
// can never be confirmed against the new store — the tags differ even
// when the bodies happen to hash alike.
func (s *Server) write(w http.ResponseWriter, r *http.Request, m *endpointInstruments, res computed, cacheState string) {
	w.Header().Set("ETag", res.etag)
	w.Header().Set("Cache-Control", "no-cache") // revalidate via ETag
	w.Header().Set("X-Cache", cacheState)
	w.Header().Set("X-Store-Epoch", strconv.FormatUint(res.epoch, 10))
	if etagMatches(r.Header.Get("If-None-Match"), res.etag) {
		m.notModified.Inc()
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", res.contentType)
	w.Write(res.body)
}

// encode marshals v as a JSON document or, for slices under NDJSON, one
// JSON object per line.
func encode(v any, contentType string) ([]byte, error) {
	if contentType == ctNDJSON {
		rv := reflect.ValueOf(v)
		if rv.Kind() == reflect.Slice {
			var buf []byte
			for i := 0; i < rv.Len(); i++ {
				line, err := json.Marshal(rv.Index(i).Interface())
				if err != nil {
					return nil, err
				}
				buf = append(buf, line...)
				buf = append(buf, '\n')
			}
			return buf, nil
		}
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(body, '\n'), nil
}

// etagOf derives the entity tag from the store epoch plus a hash of the
// canonical request key and the body: "e<epoch>-<fnv64a>". The epoch
// prefix is the zero-drop swap guarantee — validators from different
// epochs never compare equal — and hashing the key (which carries the
// endpoint, the cycle window and every other parameter) keeps two
// windows that happen to render the same bytes from sharing a
// validator.
func etagOf(epoch uint64, key string, body []byte) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(body)
	return fmt.Sprintf("%q", fmt.Sprintf("e%d-%016x", epoch, h.Sum64()))
}

// etagMatches implements the If-None-Match comparison over a
// comma-separated candidate list.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

func (s *Server) badRequest(w http.ResponseWriter, endpoint string, err error) {
	s.metrics.of(endpoint).requests.Inc()
	s.metrics.of(endpoint).errors.Inc()
	w.Header().Set("Content-Type", ctJSON)
	w.WriteHeader(http.StatusBadRequest)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// intParam parses an optional integer query parameter into dst,
// enforcing [lo, hi].
func intParam(q url.Values, name string, lo, hi int, dst *int) error {
	raw := q.Get(name)
	if raw == "" {
		return nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return fmt.Errorf("parameter %q must be an integer, got %q", name, raw)
	}
	if v < lo || v > hi {
		return fmt.Errorf("parameter %q must be in [%d, %d], got %d", name, lo, hi, v)
	}
	*dst = v
	return nil
}

// windowParam parses the optional from/to cycle parameters every figure
// endpoint accepts: the half-open window [from, to) on the campaign
// cycle axis. Absent (or zero) bounds are unconstrained, mirroring
// store.Window semantics.
func windowParam(q url.Values) (store.Window, error) {
	var from, to int
	if err := intParam(q, "from", 0, 1<<30, &from); err != nil {
		return store.Window{}, err
	}
	if err := intParam(q, "to", 0, 1<<30, &to); err != nil {
		return store.Window{}, err
	}
	if from > 0 && to > 0 && from >= to {
		return store.Window{}, fmt.Errorf("cycle window [%d, %d) is empty", from, to)
	}
	return store.Window{From: from, To: to}, nil
}

// windowKey canonicalizes a window for cache keys and ETags.
func windowKey(w store.Window) string {
	return fmt.Sprintf("from=%d&to=%d", w.From, w.To)
}

func platformParam(q url.Values) (string, error) {
	platform := q.Get("platform")
	switch platform {
	case "":
		return "speedchecker", nil
	case "speedchecker", "atlas":
		return platform, nil
	}
	return "", fmt.Errorf("parameter %q must be speedchecker or atlas, got %q", "platform", platform)
}

// ---- lifecycle ----

// ListenAndServe serves the server's Handler on addr until ctx is
// cancelled, then drains: readiness flips to 503 first (load balancers
// stop routing), then in-flight requests finish gracefully.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Server.ListenAndServe over an existing listener
// (tests pass one bound to an ephemeral port).
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	return serveListener(ctx, ln, s.Handler(), s.BeginDrain)
}

// ListenAndServe serves h on addr until ctx is cancelled, then drains
// in-flight requests gracefully before returning. Prefer the Server
// method, which also flips /v1/readyz before draining.
func ListenAndServe(ctx context.Context, addr string, h http.Handler) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return ServeListener(ctx, ln, h)
}

// ServeListener is ListenAndServe over an existing listener.
func ServeListener(ctx context.Context, ln net.Listener, h http.Handler) error {
	return serveListener(ctx, ln, h, nil)
}

func serveListener(ctx context.Context, ln net.Listener, h http.Handler, beginDrain func()) error {
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	done := make(chan error, 1)
	go func() {
		<-ctx.Done()
		if beginDrain != nil {
			beginDrain() // readyz → 503 before the listener closes
		}
		drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(drainCtx)
	}()
	if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Surface drain errors (requests still running past the grace
	// period) rather than swallowing them.
	return <-done
}

// parseContinent validates the continent query parameter against the
// continents the analyses know.
func parseContinent(s string) (string, error) {
	for _, c := range knownContinents {
		if c == s {
			return s, nil
		}
	}
	return "", fmt.Errorf("parameter %q must be one of %s, got %q", "continent", strings.Join(knownContinents, "/"), s)
}

var knownContinents = []string{"EU", "NA", "SA", "AS", "AF", "OC"}
