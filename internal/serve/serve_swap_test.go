package serve_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/serve"
	"repro/internal/store"
)

// blockingQuerier parks every CDF query on a gate so tests control
// exactly when an in-flight request completes.
type blockingQuerier struct {
	*store.Store
	gate  chan struct{}
	calls atomic.Int64
}

func (b *blockingQuerier) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	b.calls.Add(1)
	<-b.gate
	return b.Store.ContinentCDFs(platform)
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// A validator minted before a Swap must never be confirmed afterwards,
// even when the new store serves a byte-identical body: the epoch in
// the ETag is what breaks the match, not the content hash.
func TestSwapBreaksStaleETags(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{})
	h := srv.Handler()

	first := doGet(h, "/v1/latency-map", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("cold GET = %d", first.Code)
	}
	etag1 := first.Header().Get("ETag")
	if !strings.Contains(etag1, "e1-") {
		t.Errorf("epoch-1 ETag = %q, want e1- prefix", etag1)
	}
	if got := first.Header().Get("X-Store-Epoch"); got != "1" {
		t.Errorf("X-Store-Epoch = %q, want 1", got)
	}
	if rec := doGet(h, "/v1/latency-map", map[string]string{"If-None-Match": etag1}); rec.Code != http.StatusNotModified {
		t.Fatalf("same-epoch revalidation = %d, want 304", rec.Code)
	}

	// Swap to the *same* store: identical rows, identical body bytes.
	if epoch := srv.Swap(st); epoch != 2 {
		t.Fatalf("Swap returned epoch %d, want 2", epoch)
	}
	rec := doGet(h, "/v1/latency-map", map[string]string{"If-None-Match": etag1})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-swap revalidation = %d, want 200 (stale 304 leaked)", rec.Code)
	}
	if got := rec.Header().Get("X-Store-Epoch"); got != "2" {
		t.Errorf("post-swap X-Store-Epoch = %q, want 2", got)
	}
	etag2 := rec.Header().Get("ETag")
	if !strings.Contains(etag2, "e2-") || etag2 == etag1 {
		t.Errorf("post-swap ETag = %q, want a fresh e2- tag (was %q)", etag2, etag1)
	}
	// The new-epoch validator revalidates normally.
	if rec := doGet(h, "/v1/latency-map", map[string]string{"If-None-Match": etag2}); rec.Code != http.StatusNotModified {
		t.Errorf("new-epoch revalidation = %d, want 304", rec.Code)
	}
}

// altStore builds a second store whose CDF bodies cannot collide with
// the fixture's — the torn-store detector in the swap race and chaos
// tests.
func altStore(opts store.Options) *store.Store {
	b := store.NewBuilder(opts)
	for k := 0; k < 40; k++ {
		b.Add(store.Sample{
			Platform: "atlas", Country: "DE", Continent: geo.EU,
			Provider: "AMZN", RTTms: 99 + float64(k%3),
		})
	}
	return b.Seal()
}

// 32 concurrent cold GETs racing a live Swap: every response must be a
// 200 belonging wholly to one epoch (header, ETag and body all agree —
// no torn store), requests must coalesce to exactly one store query
// per epoch, and both epochs must be observed.
func TestSwapRaceCoalescesPerEpoch(t *testing.T) {
	stA, _, _ := fixture(t)
	qA := &blockingQuerier{Store: stA, gate: make(chan struct{})}
	qB := &blockingQuerier{Store: altStore(store.Options{Shards: 2}), gate: make(chan struct{})}
	srv := serve.New(qA, serve.Options{})
	h := srv.Handler()

	const n = 32
	type response struct {
		code  int
		epoch string
		etag  string
		body  string
	}
	responses := make([]response, n)
	var wg sync.WaitGroup
	get := func(i int) {
		defer wg.Done()
		rec := doGet(h, "/v1/cdf?platform=atlas", nil)
		responses[i] = response{rec.Code, rec.Header().Get("X-Store-Epoch"), rec.Header().Get("ETag"), rec.Body.String()}
	}
	// First half launches against epoch 1 and parks on qA's gate (one
	// in the flight, the rest coalescing onto it)...
	for i := 0; i < n/2; i++ {
		wg.Add(1)
		go get(i)
	}
	waitFor(t, "epoch-1 flight to start", func() bool { return qA.calls.Load() >= 1 })
	// ...then the store swaps mid-flight and the second half arrives.
	if epoch := srv.Swap(qB); epoch != 2 {
		t.Fatalf("Swap returned epoch %d", epoch)
	}
	for i := n / 2; i < n; i++ {
		wg.Add(1)
		go get(i)
	}
	waitFor(t, "epoch-2 flight to start", func() bool { return qB.calls.Load() >= 1 })
	close(qA.gate)
	close(qB.gate)
	wg.Wait()

	bodies := map[string]map[string]bool{} // epoch → distinct bodies
	for i, r := range responses {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.code)
		}
		if r.epoch != "1" && r.epoch != "2" {
			t.Fatalf("request %d: X-Store-Epoch %q", i, r.epoch)
		}
		if !strings.Contains(r.etag, "e"+r.epoch+"-") {
			t.Errorf("request %d: epoch %s with ETag %q", i, r.epoch, r.etag)
		}
		if bodies[r.epoch] == nil {
			bodies[r.epoch] = map[string]bool{}
		}
		bodies[r.epoch][r.body] = true
	}
	if len(bodies) != 2 {
		t.Fatalf("observed epochs %v, want both 1 and 2", bodies)
	}
	for epoch, set := range bodies {
		if len(set) != 1 {
			t.Errorf("epoch %s served %d distinct bodies, want 1 (torn store)", epoch, len(set))
		}
	}
	for b1 := range bodies["1"] {
		for b2 := range bodies["2"] {
			if b1 == b2 {
				t.Error("epochs 1 and 2 served identical bodies; torn-store detector is blind")
			}
		}
	}
	if a, b := qA.calls.Load(), qB.calls.Load(); a != 1 || b != 1 {
		t.Errorf("store queries: epoch1=%d epoch2=%d, want exactly 1 each (per-epoch coalescing)", a, b)
	}
}

// Liveness and readiness split: healthz stays 200 through a drain,
// readyz flips to 503 the moment BeginDrain is called.
func TestReadyzDrain(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{})
	h := srv.Handler()

	rec := doGet(h, "/v1/readyz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"epoch":1`) {
		t.Fatalf("readyz = %d %q, want 200 with epoch", rec.Code, rec.Body.String())
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("readyz Cache-Control = %q, want no-store", cc)
	}
	srv.Swap(st)
	if rec := doGet(h, "/v1/readyz", nil); !strings.Contains(rec.Body.String(), `"epoch":2`) {
		t.Errorf("readyz after swap = %q, want epoch 2", rec.Body.String())
	}

	srv.BeginDrain()
	if rec := doGet(h, "/v1/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining readyz = %d, want 503", rec.Code)
	}
	if rec := doGet(h, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("draining healthz = %d, want 200 (liveness is not routability)", rec.Code)
	}
	if srv.Ready() {
		t.Error("Ready() = true after BeginDrain")
	}
	var stats serve.Statsz
	getJSON(t, h, "/v1/statsz", &stats)
	if stats.Ready || stats.StoreEpoch != 2 {
		t.Errorf("statsz ready=%v epoch=%d, want false/2", stats.Ready, stats.StoreEpoch)
	}
}

// The Server's own ServeListener drains gracefully and flips readiness
// before returning.
func TestServerServeListenerDrain(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.ServeListener(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz over TCP = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within 5s")
	}
	if srv.Ready() {
		t.Error("server still ready after drained shutdown")
	}
}

// Per-client quotas: a client that outruns its bucket gets 429 with a
// Retry-After, other clients and the control endpoints are unaffected,
// and the denial is visible on /v1/metricsz.
func TestQuotaDenies429(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{
		Admit: admit.Options{RatePerSec: 0.001, Burst: 2},
	})
	h := srv.Handler()

	for i := 0; i < 2; i++ {
		if rec := doGet(h, "/v1/latency-map", nil); rec.Code != http.StatusOK {
			t.Fatalf("in-quota request %d = %d", i, rec.Code)
		}
	}
	rec := doGet(h, "/v1/latency-map", nil)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request = %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("429 Retry-After = %q, want a positive whole-second value", ra)
	}
	if !strings.Contains(rec.Body.String(), "quota") {
		t.Errorf("429 body = %q", rec.Body.String())
	}

	// A different client identity has its own bucket.
	if rec := doGet(h, "/v1/latency-map", map[string]string{"X-Client-ID": "other"}); rec.Code != http.StatusOK {
		t.Errorf("independent client = %d, want 200", rec.Code)
	}
	// Control endpoints bypass admission even for the throttled client.
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/metricsz"} {
		if rec := doGet(h, path, nil); rec.Code != http.StatusOK {
			t.Errorf("GET %s while throttled = %d, want 200 (bypass)", path, rec.Code)
		}
	}
	body := doGet(h, "/v1/metricsz", nil).Body.String()
	if !strings.Contains(body, "admit_quota_denied_total 1") {
		t.Errorf("metricsz missing denial counter:\n%s", body)
	}
}

// The concurrency ceiling sheds with 503 while a slot is held and
// recovers when it frees up.
func TestLimiterSheds503(t *testing.T) {
	st, _, _ := fixture(t)
	q := &blockingQuerier{Store: st, gate: make(chan struct{})}
	srv := serve.New(q, serve.Options{
		Admit: admit.Options{RatePerSec: -1, MaxInFlight: 1},
	})
	h := srv.Handler()

	var wg sync.WaitGroup
	wg.Add(1)
	var heldCode int
	go func() {
		defer wg.Done()
		heldCode = doGet(h, "/v1/cdf?platform=atlas", nil).Code
	}()
	waitFor(t, "holder to occupy the slot", func() bool { return q.calls.Load() >= 1 })

	rec := doGet(h, "/v1/latency-map", nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("request past ceiling = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Errorf("503 Retry-After = %q, want 1", ra)
	}
	if body := doGet(h, "/v1/metricsz", nil).Body.String(); !strings.Contains(body, "admit_shed_total 1") {
		t.Errorf("metricsz missing shed counter:\n%s", body)
	}

	close(q.gate)
	wg.Wait()
	if heldCode != http.StatusOK {
		t.Fatalf("held request finished with %d", heldCode)
	}
	if rec := doGet(h, "/v1/latency-map", nil); rec.Code != http.StatusOK {
		t.Errorf("post-release request = %d, want 200 (slot recovered)", rec.Code)
	}
}
