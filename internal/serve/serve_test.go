package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/asn"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/serve"
	"repro/internal/store"
)

// fixture builds a deterministic dataset, its sealed store, and the raw
// inputs so expectations can be recomputed through the batch analyses.
func fixture(t testing.TB) (*store.Store, *dataset.Store, []pipeline.Processed) {
	t.Helper()
	ip, err := netaddr.ParseIP("192.0.2.7")
	if err != nil {
		t.Fatal(err)
	}
	type region struct {
		id, prov string
		cont     geo.Continent
		offset   float64
	}
	regions := []region{
		{"eu-frankfurt", "AMZN", geo.EU, 0},
		{"eu-london", "GCP", geo.EU, 15},
		{"na-virginia", "MSFT", geo.NA, 0},
	}
	countries := []struct {
		code string
		cont geo.Continent
		base float64
	}{
		{"DE", geo.EU, 16}, {"FR", geo.EU, 22}, {"US", geo.NA, 38},
	}
	rng := rand.New(rand.NewSource(3))
	ds := &dataset.Store{}
	for _, c := range countries {
		for _, platform := range []string{"speedchecker", "atlas"} {
			for p := 0; p < 5; p++ {
				vp := dataset.VantagePoint{
					ProbeID:  fmt.Sprintf("%s-%s-%d", platform, c.code, p),
					Platform: platform, Country: c.code, Continent: c.cont,
					ISP: asn.Number(65000 + p), Access: lastmile.WiFi,
				}
				for _, rg := range regions {
					if rg.cont != c.cont {
						continue
					}
					target := dataset.Target{
						Region: rg.id, Provider: rg.prov, Country: c.code,
						Continent: rg.cont, IP: ip,
					}
					for k := 0; k < 12; k++ {
						ds.AddPing(dataset.PingRecord{
							VP: vp, Target: target, Protocol: dataset.TCP,
							RTTms: c.base + rg.offset + rng.Float64()*5,
							Cycle: k,
						})
					}
				}
			}
		}
	}
	var processed []pipeline.Processed
	classes := []pipeline.Class{pipeline.ClassDirect, pipeline.ClassPrivate, pipeline.ClassPublic}
	for i := 0; i < 90; i++ {
		processed = append(processed, pipeline.Processed{
			Record: &dataset.TracerouteRecord{
				VP: dataset.VantagePoint{
					ProbeID: "tr", Platform: "speedchecker",
					Country: "DE", Continent: geo.EU, Access: lastmile.WiFi,
				},
				Target: dataset.Target{Provider: []string{"AMZN", "MSFT"}[i%2]},
			},
			Class: classes[i%len(classes)], EndToEndRTTms: 25,
		})
	}
	return store.FromDataset(ds, processed, store.Options{Shards: 4}), ds, processed
}

func getJSON(t *testing.T, h http.Handler, path string, out any) *httptest.ResponseRecorder {
	t.Helper()
	rec := doGet(h, path, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200 (body: %s)", path, rec.Code, rec.Body.String())
	}
	if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("GET %s: bad JSON: %v", path, err)
	}
	return rec
}

func doGet(h http.Handler, path string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// Every endpoint must return exactly what the one-shot batch analysis
// computes for the same seeded world.
func TestEndpointsMatchBatchAnalysis(t *testing.T) {
	st, ds, processed := fixture(t)
	h := serve.New(st, serve.Options{}).Handler()

	var gotMap []serve.LatencyMapEntry
	getJSON(t, h, "/v1/latency-map?min=10", &gotMap)
	if want := serve.LatencyMapDTO(analysis.LatencyMap(ds, 10)); !reflect.DeepEqual(gotMap, want) {
		t.Errorf("latency-map diverges from batch analysis:\ngot  %+v\nwant %+v", gotMap, want)
	}

	var gotCDF []serve.CDFEntry
	getJSON(t, h, "/v1/cdf?platform=speedchecker&points=32", &gotCDF)
	if want := serve.CDFDTO(analysis.ContinentDistributions(ds, "speedchecker"), 32); !reflect.DeepEqual(gotCDF, want) {
		t.Errorf("cdf diverges from batch analysis")
	}

	var gotEU []serve.CDFEntry
	getJSON(t, h, "/v1/cdf?continent=EU", &gotEU)
	if len(gotEU) != 1 || gotEU[0].Continent != "EU" {
		t.Errorf("cdf?continent=EU returned %d entries (%+v)", len(gotEU), gotEU)
	}

	var gotDiff []serve.PlatformDiffEntry
	getJSON(t, h, "/v1/platform-diff", &gotDiff)
	if want := serve.PlatformDiffDTO(analysis.PlatformComparison(ds)); !reflect.DeepEqual(gotDiff, want) {
		t.Errorf("platform-diff diverges from batch analysis")
	}

	var gotPeer []serve.PeeringShareEntry
	getJSON(t, h, "/v1/peering-shares", &gotPeer)
	if want := serve.PeeringSharesDTO(analysis.Interconnections(processed)); !reflect.DeepEqual(gotPeer, want) {
		t.Errorf("peering-shares diverges from batch analysis:\ngot  %+v\nwant %+v", gotPeer, want)
	}
}

func TestETagRevalidation(t *testing.T) {
	st, _, _ := fixture(t)
	h := serve.New(st, serve.Options{}).Handler()

	first := doGet(h, "/v1/latency-map", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("cold GET = %d", first.Code)
	}
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on response")
	}
	if first.Header().Get("X-Cache") != "miss" {
		t.Errorf("cold GET X-Cache = %q, want miss", first.Header().Get("X-Cache"))
	}

	second := doGet(h, "/v1/latency-map", map[string]string{"If-None-Match": etag})
	if second.Code != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", second.Code)
	}
	if second.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", second.Body.Len())
	}

	third := doGet(h, "/v1/latency-map", nil)
	if third.Code != http.StatusOK || third.Header().Get("X-Cache") != "hit" {
		t.Errorf("warm GET = %d X-Cache %q, want 200 hit", third.Code, third.Header().Get("X-Cache"))
	}
	if third.Header().Get("ETag") != etag {
		t.Errorf("ETag changed across identical responses: %q vs %q", third.Header().Get("ETag"), etag)
	}

	var stats serve.Statsz
	getJSON(t, h, "/v1/statsz", &stats)
	lm := stats.Endpoints["latency-map"]
	if lm.CacheHits < 2 || lm.CacheMisses != 1 || lm.NotModified != 1 {
		t.Errorf("statsz counters off: %+v", lm)
	}
	if stats.Cache.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", stats.Cache.Entries)
	}
	if stats.Store.Rows == 0 || stats.Store.Shards != 4 {
		t.Errorf("statsz store summary off: %+v", stats.Store)
	}
}

func TestBadParams(t *testing.T) {
	st, _, _ := fixture(t)
	h := serve.New(st, serve.Options{}).Handler()
	for _, path := range []string{
		"/v1/latency-map?min=abc",
		"/v1/latency-map?min=0",
		"/v1/cdf?platform=carrier-pigeon",
		"/v1/cdf?points=1",
		"/v1/cdf?points=1000000",
		"/v1/cdf?continent=XX",
	} {
		rec := doGet(h, path, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
		var msg map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &msg); err != nil || msg["error"] == "" {
			t.Errorf("GET %s: 400 body not a JSON error: %q", path, rec.Body.String())
		}
	}
}

func TestNDJSONNegotiation(t *testing.T) {
	st, ds, _ := fixture(t)
	h := serve.New(st, serve.Options{}).Handler()
	rec := doGet(h, "/v1/latency-map", map[string]string{"Accept": "application/x-ndjson"})
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n")
	want := analysis.LatencyMap(ds, 10)
	if len(lines) != len(want) {
		t.Fatalf("%d NDJSON lines, want %d", len(lines), len(want))
	}
	for i, ln := range lines {
		var e serve.LatencyMapEntry
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("line %d unparseable: %v", i, err)
		}
	}
}

// /v1/metricsz must expose live instruments as text, uncacheable and
// without an ETag — telemetry is a point-in-time reading, never
// revalidatable.
func TestMetricszExposition(t *testing.T) {
	st, _, _ := fixture(t)
	reg := obs.NewRegistry()
	h := serve.New(st, serve.Options{Obs: reg}).Handler()

	doGet(h, "/v1/latency-map", nil) // populate serve instruments
	rec := doGet(h, "/v1/metricsz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /v1/metricsz = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain", ct)
	}
	if cc := rec.Header().Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	if etag := rec.Header().Get("ETag"); etag != "" {
		t.Errorf("metricsz carried ETag %q; telemetry must not be revalidatable", etag)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`serve_requests_total{endpoint="latency-map"} 1`,
		`serve_request_ms_count{endpoint="latency-map"} 1`,
		`serve_cache_entries`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metricsz missing %q:\n%s", want, body)
		}
	}
	// The server's own instruments and any campaign instruments share
	// one registry: external counters appear in the same scrape.
	reg.Counter("measure_pings_total").Add(7)
	if body := doGet(h, "/v1/metricsz", nil).Body.String(); !strings.Contains(body, "measure_pings_total 7") {
		t.Errorf("externally registered counter missing from scrape:\n%s", body)
	}
}

// /v1/tracez serves the spans recorded by the per-request middleware.
func TestTracezSpans(t *testing.T) {
	st, _, _ := fixture(t)
	tr := obs.NewTracer(16)
	h := serve.New(st, serve.Options{Tracer: tr}).Handler()

	doGet(h, "/v1/latency-map", nil)
	doGet(h, "/v1/platform-diff", nil)
	var tz obs.Tracez
	getJSON(t, h, "/v1/tracez", &tz)
	if len(tz.Spans) != 2 {
		t.Fatalf("tracez has %d spans, want 2: %+v", len(tz.Spans), tz.Spans)
	}
	paths := map[string]bool{}
	for _, sp := range tz.Spans {
		if sp.Name != "serve.query" {
			t.Errorf("span name %q, want serve.query", sp.Name)
		}
		paths[sp.Attrs["path"]] = true
	}
	if !paths["/v1/latency-map"] || !paths["/v1/platform-diff"] {
		t.Errorf("span paths = %v", paths)
	}
	if len(tz.Stages) != 1 || tz.Stages[0].Name != "serve.query" || tz.Stages[0].Count != 2 {
		t.Errorf("stage rollup = %+v", tz.Stages)
	}

	// Without a tracer the endpoint still answers, with empty slices.
	var empty obs.Tracez
	getJSON(t, serve.New(st, serve.Options{}).Handler(), "/v1/tracez", &empty)
	if empty.Spans == nil || empty.Stages == nil || len(empty.Spans) != 0 {
		t.Errorf("tracer-less tracez = %+v, want empty non-nil slices", empty)
	}
}

// pprof stays off the mux unless opted in, and mounts outside the
// request timeout when enabled.
func TestPprofGate(t *testing.T) {
	st, _, _ := fixture(t)
	if rec := doGet(serve.New(st, serve.Options{}).Handler(), "/debug/pprof/cmdline", nil); rec.Code != http.StatusNotFound {
		t.Errorf("pprof without opt-in = %d, want 404", rec.Code)
	}
	on := serve.New(st, serve.Options{EnablePprof: true}).Handler()
	if rec := doGet(on, "/debug/pprof/cmdline", nil); rec.Code != http.StatusOK {
		t.Errorf("pprof with opt-in = %d, want 200", rec.Code)
	}
	if rec := doGet(on, "/v1/healthz", nil); rec.Code != http.StatusOK {
		t.Errorf("API behind pprof-enabled mux = %d, want 200", rec.Code)
	}
}

func TestHealthz(t *testing.T) {
	st, _, _ := fixture(t)
	h := serve.New(st, serve.Options{}).Handler()
	rec := doGet(h, "/v1/healthz", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz = %d %q", rec.Code, rec.Body.String())
	}
}

// countingQuerier wraps the store, counting and slowing the underlying
// CDF queries so concurrent requests overlap.
type countingQuerier struct {
	*store.Store
	cdfCalls atomic.Int64
	delay    time.Duration
}

func (c *countingQuerier) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	c.cdfCalls.Add(1)
	time.Sleep(c.delay)
	return c.Store.ContinentCDFs(platform)
}

// N concurrent identical cold requests must execute exactly one store
// query: the first populates the cache through the singleflight group,
// everyone else coalesces onto it (or hits the cache just after).
func TestColdRequestCoalescing(t *testing.T) {
	st, _, _ := fixture(t)
	q := &countingQuerier{Store: st, delay: 100 * time.Millisecond}
	srv := serve.New(q, serve.Options{})
	h := srv.Handler()

	const n = 32
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doGet(h, "/v1/cdf?platform=atlas", nil)
			codes[i] = rec.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if got := q.cdfCalls.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d store queries, want exactly 1", n, got)
	}

	var stats serve.Statsz
	getJSON(t, h, "/v1/statsz", &stats)
	cdf := stats.Endpoints["cdf"]
	if cdf.Coalesced+cdf.CacheHits != n-1 {
		t.Errorf("coalesced (%d) + cache hits (%d) = %d, want %d",
			cdf.Coalesced, cdf.CacheHits, cdf.Coalesced+cdf.CacheHits, n-1)
	}

	// A different key is its own flight: exactly one more store query.
	doGet(h, "/v1/cdf?platform=speedchecker", nil)
	if got := q.cdfCalls.Load(); got != 2 {
		t.Errorf("distinct key ran %d total store queries, want 2", got)
	}
}

func TestCacheEviction(t *testing.T) {
	st, _, _ := fixture(t)
	h := serve.New(st, serve.Options{CacheEntries: 2}).Handler()
	for _, min := range []int{10, 11, 12, 10} {
		doGet(h, fmt.Sprintf("/v1/latency-map?min=%d", min), nil)
	}
	var stats serve.Statsz
	getJSON(t, h, "/v1/statsz", &stats)
	if stats.Cache.Entries != 2 {
		t.Errorf("cache entries = %d, want 2 (bounded)", stats.Cache.Entries)
	}
	if stats.Cache.Evictions == 0 {
		t.Error("expected evictions after overflowing a 2-entry cache")
	}
	// min=10 was evicted by 11/12, so the 4th request must be a miss.
	if lm := stats.Endpoints["latency-map"]; lm.CacheMisses != 4 {
		t.Errorf("misses = %d, want 4", lm.CacheMisses)
	}
}

func TestInvalidateCache(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{})
	h := srv.Handler()
	doGet(h, "/v1/peering-shares", nil)
	srv.InvalidateCache()
	rec := doGet(h, "/v1/peering-shares", nil)
	if rec.Header().Get("X-Cache") != "miss" {
		t.Errorf("post-invalidation GET X-Cache = %q, want miss", rec.Header().Get("X-Cache"))
	}
}

// The server must drain gracefully: a cancelled context stops the
// listener, in-flight requests finish, and ServeListener returns nil.
func TestGracefulShutdown(t *testing.T) {
	st, _, _ := fixture(t)
	srv := serve.New(st, serve.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serve.ServeListener(ctx, ln, srv.Handler()) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz over TCP = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("ServeListener returned %v after drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not drain within 5s")
	}
}
