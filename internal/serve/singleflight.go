package serve

import "sync"

// flightGroup coalesces concurrent computations of the same key: the
// first caller executes fn, every concurrent duplicate blocks and
// receives the same result. Unlike a cache, the entry lives only while
// the computation is in flight — the response cache in front of it
// handles reuse afterwards.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	wg  sync.WaitGroup
	res computed
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: map[string]*flight{}}
}

// do returns fn's result for key, with shared=true when this caller
// piggybacked on another caller's in-flight computation.
func (g *flightGroup) do(key string, fn func() computed) (res computed, shared bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.res, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.res = fn()
	f.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return f.res, false
}
