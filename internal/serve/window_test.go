package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"reflect"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
)

// TestWindowedEndpointsFullRangeMatchUnwindowed pins the HTTP face of
// the longitudinal refactor: on every figure endpoint, a window
// explicitly spanning the whole campaign must produce a byte-identical
// body to the unwindowed request — at partition counts 1/4/16 — while
// the ETag incorporates the window, so the two responses can never
// revalidate each other.
func TestWindowedEndpointsFullRangeMatchUnwindowed(t *testing.T) {
	_, ds, processed := fixture(t)
	const cycles = 12 // the fixture pings cover cycles 0..11

	endpoints := []struct {
		name string
		base string // no window params
		full string // explicit [0, cycles) window
	}{
		{"latency-map", "/v1/latency-map?min=10", "/v1/latency-map?min=10&from=0&to=12"},
		{"cdf", "/v1/cdf?platform=speedchecker&points=32", "/v1/cdf?platform=speedchecker&points=32&from=0&to=12"},
		{"cdf-continent", "/v1/cdf?continent=EU", "/v1/cdf?continent=EU&from=0&to=12"},
		{"platform-diff", "/v1/platform-diff", "/v1/platform-diff?from=0&to=12"},
		{"peering-shares", "/v1/peering-shares", "/v1/peering-shares?from=0&to=12"},
	}

	var baseline [][]byte
	for _, parts := range []int{1, 4, 16} {
		st := store.FromDataset(ds, processed, store.Options{Shards: 4, Partitions: parts, Cycles: cycles})
		h := serve.New(st, serve.Options{}).Handler()
		for i, ep := range endpoints {
			plain := doGet(h, ep.base, nil)
			windowed := doGet(h, ep.full, nil)
			if plain.Code != http.StatusOK || windowed.Code != http.StatusOK {
				t.Fatalf("partitions=%d %s: status %d / %d, want 200/200", parts, ep.name, plain.Code, windowed.Code)
			}
			if !bytes.Equal(plain.Body.Bytes(), windowed.Body.Bytes()) {
				t.Errorf("partitions=%d %s: full-window body diverges from unwindowed", parts, ep.name)
			}
			if pe, we := plain.Header().Get("ETag"), windowed.Header().Get("ETag"); pe == we {
				t.Errorf("partitions=%d %s: windowed ETag %q equals unwindowed — window not part of the cache identity", parts, ep.name, we)
			}
			// The answer must also be independent of the partition count.
			if parts == 1 {
				baseline = append(baseline, append([]byte(nil), plain.Body.Bytes()...))
			} else if !bytes.Equal(plain.Body.Bytes(), baseline[i]) {
				t.Errorf("partitions=%d %s: body diverges from the single-partition layout", parts, ep.name)
			}
		}

		// A proper sub-window is a distinct resource: 200, own ETag.
		sub := doGet(h, "/v1/latency-map?min=1&from=6", nil)
		if sub.Code != http.StatusOK || sub.Header().Get("ETag") == "" {
			t.Errorf("partitions=%d: sub-window query = %d, ETag %q", parts, sub.Code, sub.Header().Get("ETag"))
		}
	}
}

// TestChangepointEndpoint pins /v1/changepoint against the store's own
// detector: the default split lands at the campaign midpoint, explicit
// at/width pass through, and out-of-range params are rejected.
func TestChangepointEndpoint(t *testing.T) {
	_, ds, processed := fixture(t)
	const cycles = 12
	st := store.FromDataset(ds, processed, store.Options{Shards: 4, Partitions: 4, Cycles: cycles})
	h := serve.New(st, serve.Options{}).Handler()

	var got []store.ChangepointEntry
	getJSON(t, h, "/v1/changepoint", &got)
	if want := st.Changepoint("speedchecker", cycles/2, 0); !reflect.DeepEqual(got, want) {
		t.Errorf("default changepoint diverges from store.Changepoint at the midpoint:\ngot  %+v\nwant %+v", got, want)
	}
	if len(got) == 0 {
		t.Fatal("changepoint returned no pairs on a populated store")
	}
	for _, e := range got {
		if e.Status != "" {
			continue
		}
		// The fixture has no event, so no pair should look like one.
		if e.Shift >= 0.95 || e.Shift <= 0.05 {
			t.Errorf("event-free fixture scored %s×%s at shift %.3f", e.Country, e.Provider, e.Shift)
		}
	}

	getJSON(t, h, "/v1/changepoint?platform=atlas&at=3&width=2", &got)
	if want := st.Changepoint("atlas", 3, 2); !reflect.DeepEqual(got, want) {
		t.Errorf("explicit at/width changepoint diverges from store.Changepoint")
	}

	for _, path := range []string{"/v1/changepoint?at=abc", "/v1/changepoint?width=-1", "/v1/changepoint?platform=carrier-pigeon"} {
		rec := doGet(h, path, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, rec.Code)
		}
		var msg map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &msg); err != nil || msg["error"] == "" {
			t.Errorf("GET %s: 400 body not a JSON error: %q", path, rec.Body.String())
		}
	}
}
