package sketch

import (
	"math"
	"testing"
)

// FuzzSketchMerge decodes two arbitrary byte strings as sketches and,
// when both parse, merges them and checks the structural invariants a
// downstream segment query relies on: count additivity, min/max
// envelope, monotone quantiles, and a re-serializable result.
func FuzzSketchMerge(f *testing.F) {
	seed := func(build func(s *Sketch)) []byte {
		s := New(DefaultCompression)
		build(s)
		return s.AppendBinary(nil)
	}
	empty := seed(func(*Sketch) {})
	small := seed(func(s *Sketch) {
		for i := 0; i < 40; i++ {
			s.Add(float64(i) + 0.5)
		}
	})
	big := seed(func(s *Sketch) {
		for i := 0; i < 5000; i++ {
			s.Add(math.Mod(float64(i)*7.31, 250) + 1)
		}
	})
	neg := seed(func(s *Sketch) {
		for i := -50; i < 50; i++ {
			s.Add(float64(i))
		}
	})
	f.Add(empty, small)
	f.Add(small, big)
	f.Add(big, neg)
	f.Add([]byte{}, []byte{sketchVersion})
	f.Add([]byte{sketchVersion, 0xff}, small)

	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		a, _, errA := Decode(ab)
		b, _, errB := Decode(bb)
		if errA != nil || errB != nil {
			return // rejected input is a pass — it just must not panic
		}
		wantCount := a.Count() + b.Count()
		a.Merge(b)
		if a.Count() != wantCount {
			t.Fatalf("merged count %d, want %d", a.Count(), wantCount)
		}
		if a.Count() > 0 {
			if a.Min() > a.Max() {
				t.Fatalf("min %v > max %v", a.Min(), a.Max())
			}
			prev := math.Inf(-1)
			for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
				v := a.Quantile(q)
				if math.IsNaN(v) {
					t.Fatalf("Quantile(%g) is NaN", q)
				}
				if v < prev {
					t.Fatalf("Quantile(%g)=%v below previous %v", q, v, prev)
				}
				if v < a.Min() || v > a.Max() {
					t.Fatalf("Quantile(%g)=%v escapes [%v, %v]", q, v, a.Min(), a.Max())
				}
				prev = v
			}
		}
		out := a.AppendBinary(nil)
		if _, rest, err := Decode(out); err != nil || len(rest) != 0 {
			t.Fatalf("merged sketch does not round-trip: %v (rest %d)", err, len(rest))
		}
	})
}
