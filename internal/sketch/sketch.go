// Package sketch implements a mergeable quantile sketch — a t-digest
// with deterministic centroid merging — for the on-disk segment store
// (internal/segment). One sketch summarizes one (platform × group ×
// time-partition) RTT vector at seal time; at query time the per-shard,
// per-partition sketches merge into one digest per group, so quantile
// and CDF figure endpoints answer in O(centroids) instead of k-way
// merging full sorted vectors.
//
// Determinism contract. A sketch is a pure function of the value
// sequence fed to Add (the segment writer feeds each group's RTT
// vector sorted ascending, the canonical order), and Merge(a, b) is a
// pure function of the ordered pair (a, b): centroids concatenate by a
// 2-way sorted merge (a's centroid wins ties) and recompress with the
// fixed compression. Call sites fix the merge order (shard index, then
// partition index, ascending), so a replayed query reproduces the same
// bits. No clock, no randomness.
//
// Accuracy. The usual t-digest property: relative rank error
// ~O(q(1-q)/δ), tightest at the tails and the median. Small groups
// (n ≲ δ) keep every observation as a singleton centroid, so sketch
// answers on them are interpolation-exact.
package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sort"
)

// DefaultCompression is the δ used by the segment writer: ~2δ centroid
// ceiling, which keeps per-group sketches around a few KB while holding
// mid-quantile rank error under a percent.
const DefaultCompression = 200

// Compression bounds accepted by New and Decode.
const (
	minCompression = 10
	maxCompression = 10000
)

// maxCentroids bounds one decoded sketch — a corrupt or hostile count
// must not translate into an unbounded allocation.
const maxCentroids = 1 << 20

// Sketch is a mergeable t-digest. The zero value is not usable; build
// with New.
type Sketch struct {
	compression int
	// Centroids sorted by mean ascending; weights[i] observations
	// collapse onto means[i].
	means   []float64
	weights []uint64
	count   uint64
	min     float64
	max     float64
	// buf holds raw observations not yet folded into centroids.
	buf []float64
}

// New returns an empty sketch with the given compression (δ). Out of
// range compressions clamp into [10, 10000].
func New(compression int) *Sketch {
	if compression < minCompression {
		compression = minCompression
	}
	if compression > maxCompression {
		compression = maxCompression
	}
	return &Sketch{compression: compression}
}

// Compression returns the sketch's δ.
func (s *Sketch) Compression() int { return s.compression }

// Count returns the number of observations folded in.
func (s *Sketch) Count() uint64 { return s.count }

// Min returns the smallest observation (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Centroids returns the centroid count after compacting the buffer —
// the sketch's serialized size driver.
func (s *Sketch) Centroids() int {
	s.flush()
	return len(s.means)
}

// Add folds one observation in.
func (s *Sketch) Add(x float64) {
	if s.count == 0 && len(s.buf) == 0 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.buf = append(s.buf, x)
	if len(s.buf) >= 4*s.compression {
		s.flush()
	}
}

// flush folds the buffered observations into the centroid list.
func (s *Sketch) flush() {
	if len(s.buf) == 0 {
		return
	}
	sort.Float64s(s.buf)
	bufW := make([]uint64, len(s.buf))
	for i := range bufW {
		bufW[i] = 1
	}
	s.count += uint64(len(s.buf))
	means, weights := merge2Sorted(s.means, s.weights, s.buf, bufW)
	s.buf = s.buf[:0]
	s.compress(means, weights)
}

// merge2Sorted merges two centroid lists sorted by mean; a's centroid
// wins ties, which is what makes Merge a deterministic function of its
// ordered arguments.
func merge2Sorted(aM []float64, aW []uint64, bM []float64, bW []uint64) ([]float64, []uint64) {
	means := make([]float64, 0, len(aM)+len(bM))
	weights := make([]uint64, 0, len(aW)+len(bW))
	i, j := 0, 0
	for i < len(aM) && j < len(bM) {
		if aM[i] <= bM[j] {
			means = append(means, aM[i])
			weights = append(weights, aW[i])
			i++
		} else {
			means = append(means, bM[j])
			weights = append(weights, bW[j])
			j++
		}
	}
	means = append(means, aM[i:]...)
	weights = append(weights, aW[i:]...)
	means = append(means, bM[j:]...)
	weights = append(weights, bW[j:]...)
	return means, weights
}

// kScale is the t-digest k₁ scale function, δ/(2π)·asin(2q−1): steep
// at the tails (forcing singleton centroids there) and flat in the
// middle (letting centroids grow). A centroid may span at most one
// unit of k, which bounds the centroid count by ~δ.
func (s *Sketch) kScale(q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return float64(s.compression) / (2 * math.Pi) * math.Asin(2*q-1)
}

// compress runs the single deterministic compaction pass over a
// mean-sorted centroid list: neighbours merge while the combined
// centroid still spans ≤ 1 unit of the k₁ scale.
func (s *Sketch) compress(means []float64, weights []uint64) {
	if len(means) == 0 {
		s.means, s.weights = s.means[:0], s.weights[:0]
		return
	}
	total := float64(s.count)
	outM := make([]float64, 0, len(means))
	outW := make([]uint64, 0, len(weights))
	var wSoFar float64
	kLeft := s.kScale(0)
	curM, curW := means[0], float64(weights[0])
	for i := 1; i < len(means); i++ {
		pW := float64(weights[i])
		if s.kScale((wSoFar+curW+pW)/total)-kLeft <= 1 {
			curW += pW
			curM += (means[i] - curM) * pW / curW
		} else {
			outM = append(outM, curM)
			outW = append(outW, uint64(curW))
			wSoFar += curW
			kLeft = s.kScale(wSoFar / total)
			curM, curW = means[i], pW
		}
	}
	s.means = append(outM, curM)
	s.weights = append(outW, uint64(curW))
}

// Merge folds other into s. Neither sketch's compression changes; the
// result keeps s's. The operation is deterministic in the ordered pair
// (s, other) — callers fix a canonical merge order.
func (s *Sketch) Merge(other *Sketch) {
	if other == nil {
		return
	}
	other.flush()
	if other.count == 0 {
		return
	}
	s.flush()
	if s.count == 0 {
		s.min, s.max = other.min, other.max
	} else {
		if other.min < s.min {
			s.min = other.min
		}
		if other.max > s.max {
			s.max = other.max
		}
	}
	s.count += other.count
	means, weights := merge2Sorted(s.means, s.weights, other.means, other.weights)
	s.compress(means, weights)
}

// Quantile returns the q-th quantile estimate: piecewise-linear
// interpolation through the centroid centers, anchored at (0, min) and
// (count, max), so estimates never escape the observed range and are
// exact at the extremes.
func (s *Sketch) Quantile(q float64) float64 {
	s.flush()
	if s.count == 0 {
		return 0
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := q * float64(s.count)
	prevPos, prevVal := 0.0, s.min
	var cum float64
	for i, w := range s.weights {
		center := cum + float64(w)/2
		if target < center {
			return lerp(prevPos, prevVal, center, s.means[i], target)
		}
		prevPos, prevVal = center, s.means[i]
		cum += float64(w)
	}
	return lerp(prevPos, prevVal, float64(s.count), s.max, target)
}

// CDF returns the estimated P(X ≤ x) — the inverse of the Quantile
// curve.
func (s *Sketch) CDF(x float64) float64 {
	s.flush()
	if s.count == 0 {
		return 0
	}
	if x < s.min {
		return 0
	}
	if x >= s.max {
		return 1
	}
	total := float64(s.count)
	prevPos, prevVal := 0.0, s.min
	var cum float64
	for i, w := range s.weights {
		center := cum + float64(w)/2
		if x < s.means[i] {
			return lerp(prevVal, prevPos, s.means[i], center, x) / total
		}
		prevPos, prevVal = center, s.means[i]
		cum += float64(w)
	}
	return lerp(prevVal, prevPos, s.max, total, x) / total
}

// lerp interpolates the point at x on the segment (x0,y0)-(x1,y1);
// a degenerate (vertical) segment answers y1.
func lerp(x0, y0, x1, y1, x float64) float64 {
	if x1 <= x0 {
		return y1
	}
	return y0 + (y1-y0)*(x-x0)/(x1-x0)
}

// ---- serialization ----

// Wire layout (embedded in segment sketch blocks):
//
//	byte    version (1)
//	byte    flags (bit0: means stored raw, no bit-delta coding)
//	uvarint compression
//	uvarint count
//	uvarint ncentroids
//	8 bytes min (IEEE-754 bits, LE)    — only when count > 0
//	8 bytes max (IEEE-754 bits, LE)    — only when count > 0
//	means   first mean raw 8 bytes, then uvarint deltas of the float
//	        bit patterns (sorted ascending positive floats have
//	        monotonically increasing bits); raw 8-byte means when the
//	        flag is set (any non-positive or non-finite mean)
//	weights uvarint each

const sketchVersion = 1

const flagRawMeans = 0x01

// ErrCorrupt marks a sketch payload that fails structural validation.
var ErrCorrupt = errors.New("sketch: corrupt payload")

// AppendBinary serializes the sketch onto dst and returns the extended
// slice. The encoding is canonical: equal sketches serialize to equal
// bytes.
func (s *Sketch) AppendBinary(dst []byte) []byte {
	s.flush()
	raw := false
	for _, m := range s.means {
		if !(m > 0) || math.IsInf(m, 0) {
			raw = true
			break
		}
	}
	flags := byte(0)
	if raw {
		flags |= flagRawMeans
	}
	dst = append(dst, sketchVersion, flags)
	dst = binary.AppendUvarint(dst, uint64(s.compression))
	dst = binary.AppendUvarint(dst, s.count)
	dst = binary.AppendUvarint(dst, uint64(len(s.means)))
	if s.count == 0 {
		return dst
	}
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.max))
	if raw {
		for _, m := range s.means {
			dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(m))
		}
	} else {
		prev := uint64(0)
		for i, m := range s.means {
			bits := math.Float64bits(m)
			if i == 0 {
				dst = binary.LittleEndian.AppendUint64(dst, bits)
			} else {
				dst = binary.AppendUvarint(dst, bits-prev)
			}
			prev = bits
		}
	}
	for _, w := range s.weights {
		dst = binary.AppendUvarint(dst, w)
	}
	return dst
}

// Decode parses one serialized sketch from the front of b, returning
// the sketch and the unconsumed remainder. Every structural invariant
// is validated — a decoded sketch is safe to merge and query.
func Decode(b []byte) (*Sketch, []byte, error) {
	if len(b) < 2 {
		return nil, nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if b[0] != sketchVersion {
		return nil, nil, fmt.Errorf("%w: version %d", ErrCorrupt, b[0])
	}
	flags := b[1]
	if flags&^flagRawMeans != 0 {
		return nil, nil, fmt.Errorf("%w: unknown flags %#x", ErrCorrupt, flags)
	}
	b = b[2:]
	compression, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if compression < minCompression || compression > maxCompression {
		return nil, nil, fmt.Errorf("%w: compression %d out of range", ErrCorrupt, compression)
	}
	count, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	n, b, err := readUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > maxCentroids {
		return nil, nil, fmt.Errorf("%w: %d centroids exceeds limit", ErrCorrupt, n)
	}
	if (count == 0) != (n == 0) {
		return nil, nil, fmt.Errorf("%w: count %d with %d centroids", ErrCorrupt, count, n)
	}
	s := New(int(compression))
	if count == 0 {
		return s, b, nil
	}
	if len(b) < 16 {
		return nil, nil, fmt.Errorf("%w: truncated min/max", ErrCorrupt)
	}
	s.min = math.Float64frombits(binary.LittleEndian.Uint64(b))
	s.max = math.Float64frombits(binary.LittleEndian.Uint64(b[8:]))
	b = b[16:]
	if math.IsNaN(s.min) || math.IsInf(s.min, 0) || math.IsNaN(s.max) || math.IsInf(s.max, 0) || s.min > s.max {
		return nil, nil, fmt.Errorf("%w: bad min/max", ErrCorrupt)
	}
	s.means = make([]float64, n)
	if flags&flagRawMeans != 0 {
		if uint64(len(b)) < 8*n {
			return nil, nil, fmt.Errorf("%w: truncated means", ErrCorrupt)
		}
		for i := range s.means {
			s.means[i] = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
		}
	} else {
		if len(b) < 8 {
			return nil, nil, fmt.Errorf("%w: truncated means", ErrCorrupt)
		}
		bits := binary.LittleEndian.Uint64(b)
		b = b[8:]
		s.means[0] = math.Float64frombits(bits)
		for i := uint64(1); i < n; i++ {
			var d uint64
			d, b, err = readUvarint(b)
			if err != nil {
				return nil, nil, err
			}
			next, carry := bits+d, bits > math.MaxUint64-d
			if carry {
				return nil, nil, fmt.Errorf("%w: mean bits overflow", ErrCorrupt)
			}
			bits = next
			s.means[i] = math.Float64frombits(bits)
		}
	}
	var sum uint64
	for i := uint64(0); i < n; i++ {
		var w uint64
		w, b, err = readUvarint(b)
		if err != nil {
			return nil, nil, err
		}
		if w == 0 {
			return nil, nil, fmt.Errorf("%w: zero centroid weight", ErrCorrupt)
		}
		if w > math.MaxUint64-sum {
			return nil, nil, fmt.Errorf("%w: weight overflow", ErrCorrupt)
		}
		sum += w
		s.weights = append(s.weights, w)
	}
	if sum != count {
		return nil, nil, fmt.Errorf("%w: weights sum %d, count %d", ErrCorrupt, sum, count)
	}
	for i := range s.means {
		if math.IsNaN(s.means[i]) || math.IsInf(s.means[i], 0) {
			return nil, nil, fmt.Errorf("%w: non-finite mean", ErrCorrupt)
		}
		if i > 0 && s.means[i] < s.means[i-1] {
			return nil, nil, fmt.Errorf("%w: means not sorted", ErrCorrupt)
		}
	}
	if s.means[0] < s.min || s.means[n-1] > s.max {
		return nil, nil, fmt.Errorf("%w: means escape [min, max]", ErrCorrupt)
	}
	s.count = count
	return s, b, nil
}

func readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: truncated varint", ErrCorrupt)
	}
	return v, b[n:], nil
}
