package sketch

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// exactQuantile is the same piecewise-linear-through-midpoints estimate
// the sketch converges to, computed on the raw sorted data: anchor
// points (0, min), (i+0.5, xs[i]), (n, max).
func exactQuantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	target := q * float64(n)
	prevPos, prevVal := 0.0, sorted[0]
	for i, v := range sorted {
		center := float64(i) + 0.5
		if target < center {
			return lerp(prevPos, prevVal, center, v, target)
		}
		prevPos, prevVal = center, v
	}
	return lerp(prevPos, prevVal, float64(n), sorted[n-1], target)
}

func TestSmallSketchIsExact(t *testing.T) {
	// Below the compression threshold every observation stays a
	// singleton centroid, so quantiles are interpolation-exact.
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 60)
	for i := 0; i < 60; i++ {
		xs = append(xs, 5+200*rng.Float64())
	}
	s := New(DefaultCompression)
	for _, x := range xs {
		s.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got, want := s.Quantile(q), exactQuantile(xs, q)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("q=%g: got %v want %v", q, got, want)
		}
	}
	if s.Count() != uint64(len(xs)) {
		t.Fatalf("count %d, want %d", s.Count(), len(xs))
	}
	if s.Min() != xs[0] || s.Max() != xs[len(xs)-1] {
		t.Fatalf("min/max %v/%v, want %v/%v", s.Min(), s.Max(), xs[0], xs[len(xs)-1])
	}
}

func TestLargeSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	xs := make([]float64, 0, n)
	s := New(DefaultCompression)
	for i := 0; i < n; i++ {
		// Log-normal-ish RTT distribution with a long tail.
		x := 8 * math.Exp(rng.NormFloat64()*0.8)
		xs = append(xs, x)
		s.Add(x)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99, 0.999} {
		got := s.Quantile(q)
		// Convert value error to rank error: where does the sketch's
		// answer actually sit in the sorted data?
		rank := float64(sort.SearchFloat64s(xs, got)) / n
		if math.Abs(rank-q) > 0.01 {
			t.Errorf("q=%g: estimate %v sits at rank %v (rank error %v)", q, got, rank, math.Abs(rank-q))
		}
	}
	if s.Centroids() > 2*DefaultCompression {
		t.Errorf("centroids %d exceed 2·compression", s.Centroids())
	}
	// CDF must invert Quantile to within the same rank tolerance.
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := s.Quantile(q)
		if back := s.CDF(v); math.Abs(back-q) > 0.01 {
			t.Errorf("CDF(Quantile(%g)) = %g", q, back)
		}
	}
}

func TestDeterministicBuildAndMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = 1 + 500*rng.Float64()
	}
	build := func() *Sketch {
		s := New(DefaultCompression)
		for _, v := range vals {
			s.Add(v)
		}
		return s
	}
	a, b := build(), build()
	ab, bb := a.AppendBinary(nil), b.AppendBinary(nil)
	if !reflect.DeepEqual(ab, bb) {
		t.Fatal("same input sequence produced different serializations")
	}

	// Merge determinism: the same ordered merge sequence reproduces
	// identical bytes.
	parts := make([]*Sketch, 4)
	for i := range parts {
		parts[i] = New(DefaultCompression)
		for j := i; j < len(vals); j += len(parts) {
			parts[i].Add(vals[j])
		}
	}
	mergeAll := func() []byte {
		m := New(DefaultCompression)
		for _, p := range parts {
			m.Merge(p)
		}
		return m.AppendBinary(nil)
	}
	m1, m2 := mergeAll(), mergeAll()
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("canonical merge order produced different serializations")
	}

	// Merge must preserve the total count and the global extremes.
	m, rest, err := Decode(m1)
	if err != nil {
		t.Fatalf("decode merged: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("decode left %d trailing bytes", len(rest))
	}
	if m.Count() != uint64(len(vals)) {
		t.Fatalf("merged count %d, want %d", m.Count(), len(vals))
	}
	sort.Float64s(vals)
	if m.Min() != vals[0] || m.Max() != vals[len(vals)-1] {
		t.Fatalf("merged min/max %v/%v, want %v/%v", m.Min(), m.Max(), vals[0], vals[len(vals)-1])
	}
}

func TestMergeMatchesSingleSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 50000
	xs := make([]float64, 0, n)
	parts := make([]*Sketch, 16)
	for i := range parts {
		parts[i] = New(DefaultCompression)
	}
	for i := 0; i < n; i++ {
		x := 5 + 300*rng.Float64()
		xs = append(xs, x)
		parts[i%len(parts)].Add(x)
	}
	m := New(DefaultCompression)
	for _, p := range parts {
		m.Merge(p)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.05, 0.5, 0.95, 0.99} {
		got := m.Quantile(q)
		rank := float64(sort.SearchFloat64s(xs, got)) / n
		if math.Abs(rank-q) > 0.02 {
			t.Errorf("q=%g: merged estimate %v at rank %v", q, got, rank)
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	cases := map[string]func() *Sketch{
		"empty": func() *Sketch { return New(DefaultCompression) },
		"single": func() *Sketch {
			s := New(DefaultCompression)
			s.Add(42.5)
			return s
		},
		"negative-values": func() *Sketch {
			s := New(50)
			for i := -100; i < 100; i++ {
				s.Add(float64(i) / 3)
			}
			return s
		},
		"large": func() *Sketch {
			rng := rand.New(rand.NewSource(11))
			s := New(DefaultCompression)
			for i := 0; i < 30000; i++ {
				s.Add(1 + 100*rng.Float64())
			}
			return s
		},
	}
	for name, mk := range cases {
		t.Run(name, func(t *testing.T) {
			s := mk()
			buf := s.AppendBinary(nil)
			got, rest, err := Decode(buf)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if len(rest) != 0 {
				t.Fatalf("trailing bytes: %d", len(rest))
			}
			if !reflect.DeepEqual(got.AppendBinary(nil), buf) {
				t.Fatal("re-serialization differs")
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
				if a, b := s.Quantile(q), got.Quantile(q); a != b {
					t.Fatalf("q=%g: %v != %v after round trip", q, a, b)
				}
			}
		})
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	s := New(DefaultCompression)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i%97) + 1)
	}
	good := s.AppendBinary(nil)
	if _, _, err := Decode(good); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	// Truncations at every prefix must error, never panic.
	for i := 0; i < len(good); i++ {
		if _, _, err := Decode(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
	// A wrong version byte must be rejected.
	bad := append([]byte(nil), good...)
	bad[0] = 99
	if _, _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}
