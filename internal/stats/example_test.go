package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

func ExampleMedian() {
	rtts := []float64{31.2, 29.8, 30.5, 88.0, 30.1}
	med, _ := stats.Median(rtts)
	fmt.Printf("median %.1f ms\n", med)
	// Output: median 30.5 ms
}

func ExampleRequiredSampleSize() {
	// The paper's §3.3 sizing: 95% confidence, 2% margin.
	fmt.Println(stats.RequiredSampleSize(1.96, 0.5, 0.02))
	// Output: 2401
}

func ExampleKolmogorovSmirnov() {
	wireless := []float64{20, 22, 25, 28, 31}
	wired := []float64{8, 9, 10, 11, 12}
	d, _ := stats.KolmogorovSmirnov(wireless, wired)
	fmt.Printf("KS distance %.2f\n", d)
	// Output: KS distance 1.00
}

func ExampleCoefficientOfVariation() {
	lastMile := []float64{18, 22, 20, 40, 21}
	cv, _ := stats.CoefficientOfVariation(lastMile)
	fmt.Printf("Cv %.2f\n", cv)
	// Output: Cv 0.33
}
