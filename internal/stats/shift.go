package stats

// MannWhitneyShift computes the Mann-Whitney AUC shift score between
// two sorted sample vectors: P(after > before) + ½·P(after = before).
// It is the probability that a random post-window observation exceeds
// a random pre-window one — 0.5 means no shift, 1.0 a complete upward
// shift (regression, for RTTs), 0.0 a complete downward shift
// (improvement). Both inputs must be sorted ascending; the walk is
// O(n+m) and allocation-free. Either side empty returns 0.5 (no
// evidence of a shift).
func MannWhitneyShift(before, after []float64) float64 {
	n, m := len(before), len(after)
	if n == 0 || m == 0 {
		return 0.5
	}
	// For each after[j], count the before observations strictly below
	// it plus half the ties. Both vectors are sorted, so two cursors
	// over `before` (strictly-less and less-or-equal) advance
	// monotonically.
	var u float64
	lt, le := 0, 0
	for _, v := range after {
		for lt < n && before[lt] < v {
			lt++
		}
		for le < n && before[le] <= v {
			le++
		}
		u += float64(lt) + float64(le-lt)/2
	}
	return u / (float64(n) * float64(m))
}
