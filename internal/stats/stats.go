// Package stats implements the statistical machinery the paper relies
// on: medians (the headline metric, §3.3), arbitrary quantiles, CDFs,
// boxplot five-number summaries, the coefficient of variation used for
// last-mile stability (§5), and the confidence-interval sample-size
// formula n = z²·p·(1−p)/ε² used to size per-country measurement
// campaigns.
package stats

import (
	"errors"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by computations that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Median returns the median of xs. It copies and sorts internally.
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return quantileSorted(s, q), nil
}

func quantileSorted(s []float64, q float64) float64 {
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Quantiles returns several quantiles of xs with a single sort.
func Quantiles(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantilesSorted(s, qs...)
}

// QuantileSorted returns the q-th quantile of xs, which must already be
// sorted ascending. It is the zero-copy path for callers (the sharded
// measurement store) that maintain pre-sorted sample vectors.
func QuantileSorted(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, errors.New("stats: quantile out of [0,1]")
	}
	return quantileSorted(xs, q), nil
}

// QuantilesSorted returns several quantiles of an already-sorted xs
// without copying or re-sorting.
func QuantilesSorted(xs []float64, qs ...float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 || math.IsNaN(q) {
			return nil, errors.New("stats: quantile out of [0,1]")
		}
		out[i] = quantileSorted(xs, q)
	}
	return out, nil
}

// MedianSorted returns the median of an already-sorted sample.
func MedianSorted(xs []float64) (float64, error) {
	return QuantileSorted(xs, 0.5)
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// CoefficientOfVariation returns Cv = σ/μ, the last-mile stability
// metric of §5 (Figures 8 and 9). It fails on an empty set or a zero
// mean.
func CoefficientOfVariation(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	//lint:ignore floateq division guard — only an exactly-zero mean divides by zero
	if m == 0 {
		return 0, errors.New("stats: zero mean")
	}
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / m, nil
}

// FiveNum is a boxplot five-number summary plus the mean.
type FiveNum struct {
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
	N                        int
}

// IQR returns the interquartile range Q3−Q1 — the paper's "box height"
// used to compare latency variation of peering types (Fig 12b/13b).
func (f FiveNum) IQR() float64 { return f.Q3 - f.Q1 }

// Summarize computes the five-number summary of xs.
func Summarize(xs []float64) (FiveNum, error) {
	if len(xs) == 0 {
		return FiveNum{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	m, _ := Mean(s)
	return FiveNum{
		Min:    s[0],
		Q1:     quantileSorted(s, 0.25),
		Median: quantileSorted(s, 0.5),
		Q3:     quantileSorted(s, 0.75),
		Max:    s[len(s)-1],
		Mean:   m,
		N:      len(s),
	}, nil
}

// CDF is an empirical cumulative distribution function over a sorted
// sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs (copied and sorted).
func NewCDF(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrEmpty
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{sorted: s}, nil
}

// CDFFromSorted builds an empirical CDF around xs without copying. The
// caller promises xs is sorted ascending and never mutated afterwards —
// the contract the measurement store's merged shard vectors satisfy.
func CDFFromSorted(xs []float64) (CDF, error) {
	if len(xs) == 0 {
		return CDF{}, ErrEmpty
	}
	return CDF{sorted: xs}, nil
}

// At returns P(X ≤ x).
func (c CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, x)
	// Advance past equal values so At is right-continuous.
	//lint:ignore floateq exact match against stored (never recomputed) sample values
	for i < len(c.sorted) && c.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// InverseAt returns the q-th quantile of the sample.
func (c CDF) InverseAt(q float64) float64 { return quantileSorted(c.sorted, q) }

// N returns the sample count.
func (c CDF) N() int { return len(c.sorted) }

// Series samples the CDF at n evenly spaced points between min and max
// of the sample, returning (x, P(X≤x)) pairs — the plottable curve.
func (c CDF) Series(n int) [][2]float64 {
	if n < 2 || len(c.sorted) == 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	out := make([][2]float64, n)
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		out[i] = [2]float64{x, c.At(x)}
	}
	return out
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// vertical distance between the empirical CDFs of xs and ys, in [0,1].
// The analyses use it to quantify how far apart two latency
// distributions are (platform comparison, protocol comparison) beyond
// eyeballing quantiles.
func KolmogorovSmirnov(xs, ys []float64) (float64, error) {
	if len(xs) == 0 || len(ys) == 0 {
		return 0, ErrEmpty
	}
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		// Advance both CDFs past the next value, handling ties so equal
		// observations step the two curves together.
		v := math.Min(a[i], b[j])
		//lint:ignore floateq tie stepping over stored sample values — equal observations must move both CDFs together
		for i < len(a) && a[i] == v {
			i++
		}
		//lint:ignore floateq tie stepping over stored sample values — equal observations must move both CDFs together
		for j < len(b) && b[j] == v {
			j++
		}
		fa := float64(i) / float64(len(a))
		fb := float64(j) / float64(len(b))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d, nil
}

// RequiredSampleSize returns the minimum number of measurements needed
// for the given z-score, population proportion p, and margin of error ε:
// n = z²·p·(1−p)/ε². With z=1.96 (95% confidence), p=0.5, ε=0.02 this
// yields 2401, matching the paper's ">2400 measurements per country".
func RequiredSampleSize(z, p, epsilon float64) int {
	if epsilon <= 0 {
		return 0
	}
	n := z * z * p * (1 - p) / (epsilon * epsilon)
	return int(math.Ceil(n))
}

// BootstrapMedianCI returns a percentile-bootstrap confidence interval
// for the median of xs: resamples draws with replacement, interval at
// the given confidence (e.g. 0.95). Resampling uses the provided seed
// so analyses stay reproducible.
func BootstrapMedianCI(xs []float64, resamples int, confidence float64, seed int64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	if resamples < 1 || confidence <= 0 || confidence >= 1 {
		return 0, 0, errors.New("stats: bad bootstrap parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	medians := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := 0; r < resamples; r++ {
		for i := range buf {
			buf[i] = xs[rng.Intn(len(xs))]
		}
		sort.Float64s(buf)
		medians[r] = quantileSorted(buf, 0.5)
	}
	sort.Float64s(medians)
	alpha := (1 - confidence) / 2
	return quantileSorted(medians, alpha), quantileSorted(medians, 1-alpha), nil
}

// Welford is a streaming accumulator for count, mean and variance. The
// zero value is ready to use. It lets the measurement engine track
// per-probe statistics without retaining every sample.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Merge folds another accumulator into w using the parallel variance
// combination (Chan et al.), so per-shard summaries can be reduced to a
// global one without revisiting samples.
func (w *Welford) Merge(other *Welford) {
	if other == nil || other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *other
		return
	}
	n := w.n + other.n
	d := other.mean - w.mean
	w.m2 += other.m2 + d*d*float64(w.n)*float64(other.n)/float64(n)
	w.mean += d * float64(other.n) / float64(n)
	w.n = n
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
}

// WelfordFromMoments rebuilds an accumulator from previously extracted
// moments — the deserialization half of Moments. Round-tripping an
// accumulator through (Moments, WelfordFromMoments) is bit-exact, which
// the on-disk segment format relies on to reproduce store summaries
// identically after a reload.
func WelfordFromMoments(n int, mean, m2, min, max float64) Welford {
	return Welford{n: n, mean: mean, m2: m2, min: min, max: max}
}

// Moments extracts the accumulator's raw state (count, mean, sum of
// squared deviations, min, max) for serialization.
func (w *Welford) Moments() (n int, mean, m2, min, max float64) {
	return w.n, w.mean, w.m2, w.min, w.max
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 for an empty accumulator).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the population variance.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Cv returns σ/μ, or 0 if the mean is zero or no data was added.
func (w *Welford) Cv() float64 {
	//lint:ignore floateq division guard — only an exactly-zero mean divides by zero
	if w.n == 0 || w.mean == 0 {
		return 0
	}
	return w.StdDev() / w.mean
}

// Min returns the smallest observation (0 when empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 when empty).
func (w *Welford) Max() float64 { return w.max }
