package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 3}, 2},
		{[]float64{3, 1, 2}, 2},
		{[]float64{4, 1, 3, 2}, 2.5},
		{[]float64{-5, 0, 5}, 0},
	}
	for _, c := range cases {
		got, err := Median(c.xs)
		if err != nil || got != c.want {
			t.Errorf("Median(%v) = %v, %v; want %v", c.xs, got, err, c.want)
		}
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Errorf("empty median err = %v", err)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, c := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 2.5}, {0.5, 5}, {0.75, 7.5}, {1, 10},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil || math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := Quantile(xs, q); err == nil {
			t.Errorf("Quantile(%v) should fail", q)
		}
	}
}

func TestQuantilesBatch(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	got, err := Quantiles(xs, 0, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Errorf("Quantiles = %v", got)
	}
	if _, err := Quantiles(nil, 0.5); err != ErrEmpty {
		t.Error("empty Quantiles should fail")
	}
	if _, err := Quantiles(xs, 2); err == nil {
		t.Error("out-of-range q should fail")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(raw []float64) bool {
		xs := filterFinite(raw)
		if len(xs) == 0 {
			return true
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	m, err := Mean(xs)
	if err != nil || m != 5 {
		t.Errorf("Mean = %v, %v", m, err)
	}
	sd, err := StdDev(xs)
	if err != nil || sd != 2 {
		t.Errorf("StdDev = %v, %v", sd, err)
	}
	if _, err := Mean(nil); err != ErrEmpty {
		t.Error("empty mean should fail")
	}
	if _, err := StdDev(nil); err != ErrEmpty {
		t.Error("empty stddev should fail")
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	cv, err := CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil || math.Abs(cv-0.4) > 1e-9 {
		t.Errorf("Cv = %v, %v", cv, err)
	}
	if _, err := CoefficientOfVariation([]float64{0, 0}); err == nil {
		t.Error("zero mean should fail")
	}
	if _, err := CoefficientOfVariation(nil); err == nil {
		t.Error("empty should fail")
	}
	// Constant samples have zero variation.
	cv, err = CoefficientOfVariation([]float64{5, 5, 5})
	if err != nil || cv != 0 {
		t.Errorf("constant Cv = %v, %v", cv, err)
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{7, 15, 36, 39, 40, 41})
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 7 || s.Max != 41 || s.N != 6 {
		t.Errorf("min/max/n = %v/%v/%v", s.Min, s.Max, s.N)
	}
	if math.Abs(s.Median-37.5) > 1e-9 {
		t.Errorf("median = %v", s.Median)
	}
	if s.IQR() <= 0 || s.Q1 >= s.Q3 {
		t.Errorf("quartiles: %v %v", s.Q1, s.Q3)
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("empty summarize should fail")
	}
}

func TestSummarizeOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := filterFinite(raw)
		if len(xs) == 0 {
			return true
		}
		s, err := Summarize(xs)
		if err != nil {
			return false
		}
		return s.Min <= s.Q1 && s.Q1 <= s.Median && s.Median <= s.Q3 && s.Q3 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	c, err := NewCDF([]float64{1, 2, 2, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(2); got != 0.6 {
		t.Errorf("At(2) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %v", got)
	}
	if c.N() != 5 {
		t.Errorf("N = %d", c.N())
	}
	if got := c.InverseAt(0.5); got != 2 {
		t.Errorf("InverseAt(0.5) = %v", got)
	}
	if _, err := NewCDF(nil); err != ErrEmpty {
		t.Error("empty CDF should fail")
	}
}

func TestCDFSeries(t *testing.T) {
	c, _ := NewCDF([]float64{0, 5, 10})
	s := c.Series(11)
	if len(s) != 11 {
		t.Fatalf("series len = %d", len(s))
	}
	if s[0][0] != 0 || s[10][0] != 10 {
		t.Errorf("series x range = %v..%v", s[0][0], s[10][0])
	}
	if s[10][1] != 1 {
		t.Errorf("series should end at probability 1, got %v", s[10][1])
	}
	for i := 1; i < len(s); i++ {
		if s[i][1] < s[i-1][1] {
			t.Errorf("series not monotone at %d", i)
		}
	}
	if got := c.Series(1); got != nil {
		t.Error("series with n<2 should be nil")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		xs := filterFinite(raw)
		if len(xs) == 0 {
			return true
		}
		c, err := NewCDF(xs)
		if err != nil {
			return false
		}
		ps := filterFinite(probes)
		sort.Float64s(ps)
		prev := 0.0
		for _, p := range ps {
			v := c.At(p)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRequiredSampleSize(t *testing.T) {
	// The paper: 95% confidence (z=1.96), ε=2%, p=0.5 → >2400.
	n := RequiredSampleSize(1.96, 0.5, 0.02)
	if n != 2401 {
		t.Errorf("sample size = %d, want 2401", n)
	}
	if RequiredSampleSize(1.96, 0.5, 0) != 0 {
		t.Error("zero epsilon should yield 0")
	}
	// Smaller margin → more samples.
	if RequiredSampleSize(1.96, 0.5, 0.01) <= n {
		t.Error("tighter margin should need more samples")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = rng.NormFloat64()*10 + 50
		w.Add(xs[i])
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if math.Abs(w.Mean()-m) > 1e-9 {
		t.Errorf("welford mean %v vs %v", w.Mean(), m)
	}
	if math.Abs(w.StdDev()-sd) > 1e-9 {
		t.Errorf("welford sd %v vs %v", w.StdDev(), sd)
	}
	cv, _ := CoefficientOfVariation(xs)
	if math.Abs(w.Cv()-cv) > 1e-9 {
		t.Errorf("welford cv %v vs %v", w.Cv(), cv)
	}
	if w.N() != 1000 {
		t.Errorf("N = %d", w.N())
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	if w.Min() != lo || w.Max() != hi {
		t.Errorf("min/max = %v/%v, want %v/%v", w.Min(), w.Max(), lo, hi)
	}
}

func TestWelfordZeroValue(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Variance() != 0 || w.Cv() != 0 {
		t.Error("zero-value Welford should report zeros")
	}
	w.Add(5)
	if w.N() != 1 || w.Mean() != 5 || w.Variance() != 0 {
		t.Errorf("single sample: n=%d mean=%v var=%v", w.N(), w.Mean(), w.Variance())
	}
	if w.Min() != 5 || w.Max() != 5 {
		t.Error("single-sample min/max")
	}
}

func filterFinite(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			out = append(out, x)
		}
	}
	return out
}

func TestKolmogorovSmirnov(t *testing.T) {
	same := []float64{1, 2, 3, 4, 5}
	d, err := KolmogorovSmirnov(same, same)
	if err != nil || d != 0 {
		t.Errorf("identical samples: d = %v, err %v", d, err)
	}
	// Disjoint supports → statistic 1.
	d, err = KolmogorovSmirnov([]float64{1, 2, 3}, []float64{10, 11, 12})
	if err != nil || d != 1 {
		t.Errorf("disjoint samples: d = %v, err %v", d, err)
	}
	// A located shift gives an intermediate value.
	d, _ = KolmogorovSmirnov([]float64{1, 2, 3, 4}, []float64{3, 4, 5, 6})
	if d <= 0 || d >= 1 {
		t.Errorf("shifted samples: d = %v", d)
	}
	if _, err := KolmogorovSmirnov(nil, same); err != ErrEmpty {
		t.Error("empty first sample should fail")
	}
	if _, err := KolmogorovSmirnov(same, nil); err != ErrEmpty {
		t.Error("empty second sample should fail")
	}
}

func TestKolmogorovSmirnovProperties(t *testing.T) {
	f := func(rawA, rawB []float64) bool {
		a, b := filterFinite(rawA), filterFinite(rawB)
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		d1, err1 := KolmogorovSmirnov(a, b)
		d2, err2 := KolmogorovSmirnov(b, a)
		if err1 != nil || err2 != nil {
			return false
		}
		// Symmetric and bounded.
		return math.Abs(d1-d2) < 1e-12 && d1 >= 0 && d1 <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBootstrapMedianCI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 50 + rng.NormFloat64()*10
	}
	lo, hi, err := BootstrapMedianCI(xs, 400, 0.95, 1)
	if err != nil {
		t.Fatal(err)
	}
	med, _ := Median(xs)
	if !(lo <= med && med <= hi) {
		t.Errorf("CI [%v, %v] does not cover the sample median %v", lo, hi, med)
	}
	// Interval is tight around the true median for a 500-point sample.
	if hi-lo > 5 {
		t.Errorf("CI width = %v, want narrow", hi-lo)
	}
	// Higher confidence widens.
	lo99, hi99, _ := BootstrapMedianCI(xs, 400, 0.99, 1)
	if hi99-lo99 < hi-lo {
		t.Errorf("99%% CI narrower than 95%%: %v vs %v", hi99-lo99, hi-lo)
	}
	// Determinism under seed.
	lo2, hi2, _ := BootstrapMedianCI(xs, 400, 0.95, 1)
	if lo2 != lo || hi2 != hi {
		t.Error("bootstrap not deterministic under seed")
	}
	if _, _, err := BootstrapMedianCI(nil, 10, 0.95, 1); err != ErrEmpty {
		t.Error("empty input should fail")
	}
	if _, _, err := BootstrapMedianCI(xs, 0, 0.95, 1); err == nil {
		t.Error("zero resamples should fail")
	}
	if _, _, err := BootstrapMedianCI(xs, 10, 1.5, 1); err == nil {
		t.Error("bad confidence should fail")
	}
}
