package store

import "testing"

// BenchmarkStoreQuery measures the sharded fan-out + merge path for each
// figure query against the fixture campaign.
func BenchmarkStoreQuery(b *testing.B) {
	st, _, _ := fixtureStore(b, 8)
	b.Run("LatencyMap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.LatencyMap(10)
		}
	})
	b.Run("ContinentCDFs", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.ContinentCDFs("speedchecker")
		}
	})
	b.Run("PlatformDiff", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.PlatformDiff()
		}
	})
	b.Run("CountryQuantiles", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := st.CountryQuantiles("speedchecker", "DE", 0.25, 0.5, 0.9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PeeringShares", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			st.PeeringShares()
		}
	})
}

// BenchmarkStoreBuild measures ingest + seal, the one-time cost paid at
// `cloudy serve` startup.
func BenchmarkStoreBuild(b *testing.B) {
	ds, processed := fixtureDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDataset(ds, processed, Options{Shards: 8})
	}
}
