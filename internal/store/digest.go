package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"repro/internal/pipeline"
)

// ShardDigests returns one fnv-64a digest per sealed shard, computed
// over the shard's complete queryable content in a canonical order:
// row count, per-platform row counts, the provider set, every
// per-country and per-continent RTT vector (exact float bits), and the
// Welford summary. Two stores built from the same logical sample
// stream — whatever process or machine each shard's samples travelled
// through — have equal digest slices; any bit-level divergence in any
// vector changes the digest. This is the equality the distributed
// campaign plane's chaos test asserts between a merged multi-worker
// store and a single-process run (internal/cluster).
func (s *Store) ShardDigests() []string {
	out := make([]string, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.digest()
	}
	return out
}

// Digest condenses ShardDigests plus the store-level peering tallies
// (per time partition, in window order) into one hex token — the whole
// sealed store in one comparable string.
func (s *Store) Digest() string {
	h := fnv.New64a()
	for _, d := range s.ShardDigests() {
		h.Write([]byte(d))
		h.Write([]byte{0xff})
	}
	var buf [8]byte
	for pi, part := range s.peering {
		binary.LittleEndian.PutUint64(buf[:], uint64(pi))
		h.Write(buf[:])
		provs := make([]string, 0, len(part))
		for prov := range part {
			provs = append(provs, prov)
		}
		sort.Strings(provs)
		for _, prov := range provs {
			h.Write([]byte(prov))
			classes := part[prov]
			keys := make([]int, 0, len(classes))
			for cl := range classes {
				keys = append(keys, int(cl))
			}
			sort.Ints(keys)
			for _, cl := range keys {
				binary.LittleEndian.PutUint64(buf[:], uint64(cl))
				h.Write(buf[:])
				binary.LittleEndian.PutUint64(buf[:], uint64(classes[pipeline.Class(cl)]))
				h.Write(buf[:])
			}
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func (sh *shard) digest() string {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeU64(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeVecs := func(m map[groupKey]vec) {
		keys := make([]groupKey, 0, len(m))
		for g := range m {
			keys = append(keys, g)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].platform != keys[j].platform {
				return keys[i].platform < keys[j].platform
			}
			return keys[i].name < keys[j].name
		})
		writeU64(uint64(len(keys)))
		for _, g := range keys {
			writeStr(g.platform)
			writeStr(g.name)
			v := m[g]
			writeU64(uint64(len(v.rtt)))
			for _, x := range v.rtt {
				writeU64(math.Float64bits(x))
			}
			for _, c := range v.cycle {
				writeU64(uint64(c))
			}
		}
	}

	writeU64(uint64(sh.rows))
	plats := make([]string, 0, len(sh.platformRows))
	for p := range sh.platformRows {
		plats = append(plats, p)
	}
	sort.Strings(plats)
	for _, p := range plats {
		writeStr(p)
		writeU64(uint64(sh.platformRows[p]))
	}
	provs := make([]string, 0, len(sh.providers))
	for p := range sh.providers {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	for _, p := range provs {
		writeStr(p)
	}
	for _, part := range sh.parts {
		writeU64(uint64(int64(part.window.From)))
		writeU64(uint64(int64(part.window.To)))
		writeU64(uint64(part.rows))
		writeU64(uint64(int64(part.minCycle)))
		writeU64(uint64(int64(part.maxCycle)))
		writeVecs(part.byCountry)
		writeVecs(part.byContinent)
		writeVecs(part.byPair)
	}
	// The Welford summary is a float-order-sensitive reduction; it is
	// included because the seal path feeds it in a canonical order
	// (sorted probes × per-probe stream order), so bit-equality here is
	// part of the "same sealed store" claim.
	writeU64(uint64(sh.rtt.N()))
	writeU64(math.Float64bits(sh.rtt.Mean()))
	writeU64(math.Float64bits(sh.rtt.Variance()))
	writeU64(math.Float64bits(sh.rtt.Min()))
	writeU64(math.Float64bits(sh.rtt.Max()))
	return fmt.Sprintf("%016x", h.Sum64())
}
