package store

import (
	"sort"

	"repro/internal/pipeline"
	"repro/internal/stats"
)

// Dim names one of the three query dimensions a sealed shard groups
// by. It mirrors the internal dimension enum so external consumers —
// the on-disk segment writer in internal/segment — can label dumped
// group vectors without reaching into shard internals.
type Dim uint8

const (
	DimCountry   Dim = Dim(dimCountry)
	DimContinent Dim = Dim(dimContinent)
	DimPair      Dim = Dim(dimPair)
)

// PairName builds a DimPair group name from its parts, and SplitPair
// inverts it — the country and provider of a country×provider group.
func PairName(country, provider string) string { return pairName(country, provider) }

// SplitPair splits a DimPair group name at its first separator.
func SplitPair(name string) (country, provider string) { return splitPair(name) }

// DumpVisitor receives a sealed store's complete content, callback by
// callback, in canonical order: shards ascending; within a shard its
// partitions ascending; within a partition its groups ordered by
// (dimension, platform, name); peering tallies last, partitions
// ascending. Nil callbacks are skipped. The slices and maps handed to
// the callbacks alias the store's frozen memory and must be treated as
// read-only.
//
// The canonical order is part of the contract: the segment writer
// serializes exactly this sequence, which is what makes a written
// segment a deterministic function of the sealed store.
type DumpVisitor struct {
	// Shard reports one shard's totals: row count, sorted provider
	// list, per-platform row counts, and the shard-global Welford RTT
	// accumulator (in arrival order, the summary-statistics source).
	Shard func(shard, rows int, providers []string, platformRows map[string]int, rtt *stats.Welford)
	// Partition reports one time partition's window and zone map.
	// Empty partitions (rows == 0) are reported too — the partition
	// layout itself is part of the store's identity.
	Partition func(shard, part int, w Window, minCycle, maxCycle, rows int)
	// Group reports one group's RTT vector (sorted ascending) with the
	// index-aligned cycle column.
	Group func(shard, part int, dim Dim, platform, name string, rtt []float64, cycle []int32)
	// Peering reports one partition's interconnection tallies and the
	// window they cover.
	Peering func(part int, w Window, counts map[string]map[pipeline.Class]int)
}

// Dump walks the sealed store in canonical order. See DumpVisitor.
func (s *Store) Dump(v DumpVisitor) {
	for i, sh := range s.shards {
		if v.Shard != nil {
			provs := make([]string, 0, len(sh.providers))
			for p := range sh.providers {
				provs = append(provs, p)
			}
			sort.Strings(provs)
			rtt := sh.rtt
			v.Shard(i, sh.rows, provs, sh.platformRows, &rtt)
		}
		for pi, p := range sh.parts {
			if v.Partition != nil {
				v.Partition(i, pi, p.window, p.minCycle, p.maxCycle, p.rows)
			}
			if v.Group == nil {
				continue
			}
			for _, dim := range []dimension{dimCountry, dimContinent, dimPair} {
				m := p.groups(dim)
				keys := make([]groupKey, 0, len(m))
				for k := range m {
					keys = append(keys, k)
				}
				sort.Slice(keys, func(a, b int) bool {
					if keys[a].platform != keys[b].platform {
						return keys[a].platform < keys[b].platform
					}
					return keys[a].name < keys[b].name
				})
				for _, k := range keys {
					g := m[k]
					v.Group(i, pi, Dim(dim), k.platform, k.name, g.rtt, g.cycle)
				}
			}
		}
	}
	if v.Peering != nil {
		for i, counts := range s.peering {
			v.Peering(i, s.partWindows[i], counts)
		}
	}
}
