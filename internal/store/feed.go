package store

import (
	"context"
	"sort"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Feed is a dataset.Sink that builds the sealed columnar store
// incrementally while a campaign runs (or while an export streams
// through the codec cursors): pings accumulate into the per-platform
// nearest-datacenter collectors, traces are classified on arrival and
// folded into the §6 interconnection tallies. Nothing is materialized
// into a dataset.Store — peak memory is the grouped sample lists, the
// same order as the sealed store itself.
//
// Like every sink, a Feed is single-writer: the campaign collector (or
// the bus delivery goroutine) owns Ping/Trace/Close. Call Seal once the
// stream has ended; the feed must not be used afterwards.
type Feed struct {
	opts   Options
	sc     *analysis.NearestCollector
	atlas  *analysis.NearestCollector
	region map[string]string // region → provider, learned from pings
	proc   *pipeline.Processor
	// counts holds the interconnection tallies per time partition: a
	// trace's tally lands in the partition covering its cycle, so each
	// partition's peering view is sealed the moment its window closes.
	counts []map[string]map[pipeline.Class]int
	pings  int
	traces int

	// Interned ingest counters (working even without a registry).
	mPings  *obs.Counter
	mTraces *obs.Counter
}

// NewFeed returns an empty feed. proc classifies incoming traceroutes
// for the peering tallies; pass nil to ignore traces (ping-only store).
func NewFeed(proc *pipeline.Processor, opts Options) *Feed {
	opts = opts.withDefaults()
	counts := make([]map[string]map[pipeline.Class]int, opts.Partitions)
	for i := range counts {
		counts[i] = map[string]map[pipeline.Class]int{}
	}
	return &Feed{
		opts:    opts,
		sc:      analysis.NewNearestCollector("speedchecker"),
		atlas:   analysis.NewNearestCollector("atlas"),
		region:  map[string]string{},
		proc:    proc,
		counts:  counts,
		mPings:  opts.Obs.Counter("store_feed_pings_total"),
		mTraces: opts.Obs.Counter("store_feed_traces_total"),
	}
}

// Ping implements dataset.Sink.
func (f *Feed) Ping(r dataset.PingRecord) error {
	f.pings++
	f.mPings.Inc()
	f.region[r.Target.Region] = r.Target.Provider
	f.sc.Add(&r)
	f.atlas.Add(&r)
	return nil
}

// Trace implements dataset.Sink. The record is copied to the heap
// because the pipeline retains a pointer to it.
func (f *Feed) Trace(r dataset.TracerouteRecord) error {
	f.traces++
	f.mTraces.Inc()
	if f.proc == nil {
		return nil
	}
	rec := r
	p := f.proc.Process(&rec)
	analysis.CountInterconnect(f.counts[f.opts.partitionIndex(r.Cycle)], &p)
	return nil
}

// Close implements dataset.Sink; the feed keeps no buffers to flush.
func (f *Feed) Close() error { return nil }

// Len returns the (pings, traces) counts seen so far.
func (f *Feed) Len() (int, int) { return f.pings, f.traces }

// AddPeeringCounts folds pre-computed interconnection tallies in — the
// batch adapter path, where traces were already classified and the
// time axis is gone; the tallies land in the first partition.
func (f *Feed) AddPeeringCounts(counts map[string]map[pipeline.Class]int) {
	part := f.counts[0]
	for prov, classes := range counts {
		dst := part[prov]
		if dst == nil {
			dst = map[pipeline.Class]int{}
			part[prov] = dst
		}
		for cl, n := range classes {
			dst[cl] += n
		}
	}
}

// Seal finalizes both nearest-DC assignments and freezes everything
// into an immutable Store. Probes are ingested in sorted order so the
// sealed store is deterministic for a given stream.
func (f *Feed) Seal() *Store { return f.SealContext(context.Background()) }

// SealContext is Seal under a tracing context: when ctx carries an
// obs.Tracer the finalize-sort-freeze pass records a "store.seal" span,
// parented on whatever span the caller (the campaign runner) holds.
func (f *Feed) SealContext(ctx context.Context) *Store {
	_, span := obs.StartSpan(ctx, "store.seal")
	defer span.End()
	b := NewBuilder(f.opts)
	for _, pl := range []struct {
		name string
		c    *analysis.NearestCollector
	}{{"speedchecker", f.sc}, {"atlas", f.atlas}} {
		na := pl.c.Finalize()
		probes := make([]string, 0, len(na.Samples))
		for probe := range na.Samples {
			probes = append(probes, probe)
		}
		sort.Strings(probes)
		for _, probe := range probes {
			vp := na.Meta[probe]
			prov := f.region[na.Region[probe]]
			cycles := na.Cycles[probe]
			for i, rtt := range na.Samples[probe] {
				b.Add(Sample{
					Platform: pl.name, Country: vp.Country,
					Continent: vp.Continent, Provider: prov, RTTms: rtt,
					Cycle: int(cycles[i]),
				})
			}
		}
	}
	for cycle0, counts := range f.counts {
		// Partition indexes map 1:1 between feed and builder — the
		// options are shared — so replaying each partition's tallies at
		// its window start lands them in the same partition.
		b.AddPeeringCountsAt(cycle0*f.opts.partitionSpan(), counts)
	}
	return b.Seal()
}
