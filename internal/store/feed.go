package store

import (
	"context"
	"sort"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Feed is a dataset.Sink that builds the sealed columnar store
// incrementally while a campaign runs (or while an export streams
// through the codec cursors): pings accumulate into the per-platform
// nearest-datacenter collectors, traces are classified on arrival and
// folded into the §6 interconnection tallies. Nothing is materialized
// into a dataset.Store — peak memory is the grouped sample lists, the
// same order as the sealed store itself.
//
// Like every sink, a Feed is single-writer: the campaign collector (or
// the bus delivery goroutine) owns Ping/Trace/Close. Call Seal once the
// stream has ended; the feed must not be used afterwards.
type Feed struct {
	opts   Options
	sc     *analysis.NearestCollector
	atlas  *analysis.NearestCollector
	region map[string]string // region → provider, learned from pings
	proc   *pipeline.Processor
	counts map[string]map[pipeline.Class]int
	pings  int
	traces int

	// Interned ingest counters (working even without a registry).
	mPings  *obs.Counter
	mTraces *obs.Counter
}

// NewFeed returns an empty feed. proc classifies incoming traceroutes
// for the peering tallies; pass nil to ignore traces (ping-only store).
func NewFeed(proc *pipeline.Processor, opts Options) *Feed {
	return &Feed{
		opts:    opts,
		sc:      analysis.NewNearestCollector("speedchecker"),
		atlas:   analysis.NewNearestCollector("atlas"),
		region:  map[string]string{},
		proc:    proc,
		counts:  map[string]map[pipeline.Class]int{},
		mPings:  opts.Obs.Counter("store_feed_pings_total"),
		mTraces: opts.Obs.Counter("store_feed_traces_total"),
	}
}

// Ping implements dataset.Sink.
func (f *Feed) Ping(r dataset.PingRecord) error {
	f.pings++
	f.mPings.Inc()
	f.region[r.Target.Region] = r.Target.Provider
	f.sc.Add(&r)
	f.atlas.Add(&r)
	return nil
}

// Trace implements dataset.Sink. The record is copied to the heap
// because the pipeline retains a pointer to it.
func (f *Feed) Trace(r dataset.TracerouteRecord) error {
	f.traces++
	f.mTraces.Inc()
	if f.proc == nil {
		return nil
	}
	rec := r
	p := f.proc.Process(&rec)
	analysis.CountInterconnect(f.counts, &p)
	return nil
}

// Close implements dataset.Sink; the feed keeps no buffers to flush.
func (f *Feed) Close() error { return nil }

// Len returns the (pings, traces) counts seen so far.
func (f *Feed) Len() (int, int) { return f.pings, f.traces }

// AddPeeringCounts folds pre-computed interconnection tallies in — the
// batch adapter path, where traces were already classified.
func (f *Feed) AddPeeringCounts(counts map[string]map[pipeline.Class]int) {
	for prov, classes := range counts {
		dst := f.counts[prov]
		if dst == nil {
			dst = map[pipeline.Class]int{}
			f.counts[prov] = dst
		}
		for cl, n := range classes {
			dst[cl] += n
		}
	}
}

// Seal finalizes both nearest-DC assignments and freezes everything
// into an immutable Store. Probes are ingested in sorted order so the
// sealed store is deterministic for a given stream.
func (f *Feed) Seal() *Store { return f.SealContext(context.Background()) }

// SealContext is Seal under a tracing context: when ctx carries an
// obs.Tracer the finalize-sort-freeze pass records a "store.seal" span,
// parented on whatever span the caller (the campaign runner) holds.
func (f *Feed) SealContext(ctx context.Context) *Store {
	_, span := obs.StartSpan(ctx, "store.seal")
	defer span.End()
	b := NewBuilder(f.opts)
	for _, pl := range []struct {
		name string
		c    *analysis.NearestCollector
	}{{"speedchecker", f.sc}, {"atlas", f.atlas}} {
		na := pl.c.Finalize()
		probes := make([]string, 0, len(na.Samples))
		for probe := range na.Samples {
			probes = append(probes, probe)
		}
		sort.Strings(probes)
		for _, probe := range probes {
			vp := na.Meta[probe]
			prov := f.region[na.Region[probe]]
			for _, rtt := range na.Samples[probe] {
				b.Add(Sample{
					Platform: pl.name, Country: vp.Country,
					Continent: vp.Continent, Provider: prov, RTTms: rtt,
				})
			}
		}
	}
	if len(f.counts) > 0 {
		b.AddPeeringCounts(f.counts)
	}
	return b.Seal()
}
