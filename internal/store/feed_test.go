package store

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/sample"
	"repro/internal/world"
)

// TestFeedMatchesBatchFromCampaign is the spine's end-to-end
// equivalence proof: one live campaign fans out through a bounded bus
// to a materializing StoreSink, a CSV/JSONL FileSink and incremental
// Feeds at shard counts 1/4/16 — and every sealed feed must answer all
// store queries bit-identically to the legacy batch path
// (materialize, then FromDataset), as must a feed rebuilt from the
// exported files through the codec cursors.
func TestFeedMatchesBatchFromCampaign(t *testing.T) {
	w := world.MustBuild(world.Config{Seed: 1})
	sim := netsim.New(w)
	sc := probes.GenerateSpeedchecker(w, probes.Config{Seed: 1, Scale: 0.02})
	at := probes.GenerateAtlas(w, probes.Config{Seed: 1, Scale: 0.3})
	cfg := measure.Config{
		Seed: 1, Cycles: 2, ProbesPerCountry: 12, TargetsPerProbe: 4,
		MinProbesPerCountry: 1, RequestsPerMinute: 1000, Workers: 4,
		BothPingProtocols: measure.FlagOn, Traceroutes: true, NeighborContinentTargets: true,
	}

	shardCounts := []int{1, 4, 16}
	feeds := make([]*Feed, len(shardCounts))
	for i, n := range shardCounts {
		feeds[i] = NewFeed(pipeline.NewProcessor(w), Options{Shards: n})
	}
	storeSink := dataset.NewStoreSink(nil)
	var pingsCSV, tracesJSONL bytes.Buffer
	fileSink := dataset.NewFileSink(&pingsCSV, &tracesJSONL)

	// One FileSink shared across both campaigns (a second would emit a
	// second CSV header), each campaign driving its own bus over the
	// same sinks. A small buffer exercises backpressure.
	sinks := []sample.Sink{storeSink, fileSink}
	for _, f := range feeds {
		sinks = append(sinks, f)
	}
	runCampaign := func(fleet *probes.Fleet, cfg measure.Config) {
		t.Helper()
		cfg.Sink = sample.NewBus(sample.BusOptions{Buffer: 64}, sinks...)
		campaign, err := measure.New(sim, fleet, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, st, err := campaign.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if st.SinkDegraded || st.Spilled > 0 {
			t.Fatalf("campaign degraded its sink: %+v", st)
		}
	}
	runCampaign(sc, cfg)
	atCfg := cfg
	atCfg.ProbesPerCountry = 0
	atCfg.Cycles = 1
	runCampaign(at, atCfg)

	ds := storeSink.Store
	if np, nt := ds.Len(); np == 0 || nt == 0 {
		t.Fatalf("materialized store is empty: %d pings, %d traces", np, nt)
	}
	processed := pipeline.NewProcessor(w).ProcessAll(ds)

	check := func(t *testing.T, st *Store, ds *dataset.Store, processed []pipeline.Processed, shards int) {
		t.Helper()
		batch := FromDataset(ds, processed, Options{Shards: shards})
		if got, want := st.LatencyMap(10), batch.LatencyMap(10); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: LatencyMap diverges from batch", shards)
		}
		for _, platform := range []string{"speedchecker", "atlas"} {
			if got, want := st.ContinentCDFs(platform), batch.ContinentCDFs(platform); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d: ContinentCDFs(%s) diverges from batch", shards, platform)
			}
			if got, want := st.Countries(platform), batch.Countries(platform); !reflect.DeepEqual(got, want) {
				t.Errorf("shards=%d: Countries(%s) diverges from batch", shards, platform)
			}
		}
		if got, want := st.PlatformDiff(), batch.PlatformDiff(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: PlatformDiff diverges from batch", shards)
		}
		if got, want := st.PeeringShares(), batch.PeeringShares(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: PeeringShares diverges from batch:\ngot  %+v\nwant %+v", shards, got, want)
		}
		for _, cc := range batch.Countries("speedchecker") {
			gq, gn, gerr := st.CountryQuantiles("speedchecker", cc, 0.25, 0.5, 0.95)
			wq, wn, werr := batch.CountryQuantiles("speedchecker", cc, 0.25, 0.5, 0.95)
			if gn != wn || (gerr == nil) != (werr == nil) || !reflect.DeepEqual(gq, wq) {
				t.Errorf("shards=%d: CountryQuantiles(%s) diverges from batch", shards, cc)
			}
		}
	}

	for i, n := range shardCounts {
		sealed := feeds[i].Seal()
		check(t, sealed, ds, processed, n)
		if p, tr := feeds[i].Len(); p == 0 || tr == 0 {
			t.Fatalf("feed saw %d pings, %d traces", p, tr)
		}
	}

	// The exported files, re-ingested through the codec cursors, must
	// seal to the same store the batch loader builds from the same files
	// — the `cloudy serve` cold-start path. (The CSV codec rounds RTTs
	// to 6 decimals, so the comparison baseline is the re-decoded
	// records, not the live ones.)
	fromExport := NewFeed(pipeline.NewProcessor(w), Options{Shards: 4})
	if err := dataset.ScanPings(bytes.NewReader(pingsCSV.Bytes()), fromExport.Ping); err != nil {
		t.Fatal(err)
	}
	if err := dataset.ScanTraces(bytes.NewReader(tracesJSONL.Bytes()), fromExport.Trace); err != nil {
		t.Fatal(err)
	}
	pingsRT, err := dataset.ReadPingsCSV(bytes.NewReader(pingsCSV.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	tracesRT, err := dataset.ReadTracesJSONL(bytes.NewReader(tracesJSONL.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	dsRT := dataset.FromRecords(pingsRT, tracesRT)
	check(t, fromExport.Seal(), dsRT, pipeline.NewProcessor(w).ProcessAll(dsRT), 4)
}

// TestFeedMatchesBatchOnFixture covers the synthetic fixture too, where
// the nearest-DC structure is hand-built and easy to reason about.
func TestFeedMatchesBatchOnFixture(t *testing.T) {
	ds, processed := fixtureDataset(t)
	for _, shards := range []int{1, 4, 16} {
		f := NewFeed(nil, Options{Shards: shards})
		for i := range ds.Pings {
			if err := f.Ping(ds.Pings[i]); err != nil {
				t.Fatal(err)
			}
		}
		f.AddPeeringCounts(analysis.InterconnectCounts(processed))
		st := f.Seal()
		batch := FromDataset(ds, processed, Options{Shards: shards})
		if got, want := st.LatencyMap(10), batch.LatencyMap(10); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: LatencyMap diverges", shards)
		}
		if got, want := st.PeeringShares(), batch.PeeringShares(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: PeeringShares diverge", shards)
		}
		if got, want := st.Summary(), batch.Summary(); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: Summary diverges:\ngot  %+v\nwant %+v", shards, got, want)
		}
	}
}
