package store

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/obs"
)

// hedgeFixture builds a small sealed store spread over 4 shards.
func hedgeFixture(opts Options) *Store {
	b := NewBuilder(opts)
	countries := []struct {
		code string
		cont geo.Continent
	}{{"DE", geo.EU}, {"FR", geo.EU}, {"US", geo.NA}, {"JP", geo.AS}, {"BR", geo.SA}}
	for ci, c := range countries {
		for _, prov := range []string{"AMZN", "GCP", "MSFT"} {
			for k := 0; k < 20; k++ {
				b.Add(Sample{
					Platform: "speedchecker", Country: c.code, Continent: c.cont,
					Provider: prov, RTTms: float64(10*ci + k),
				})
			}
		}
	}
	return b.Seal()
}

// A hedged query over a store with one stalled shard must return
// exactly what the unhedged query returns, fire at least one hedge,
// and win with it (the hedge attempt is not stalled, so it finishes
// first).
func TestHedgeRecoversStalledShard(t *testing.T) {
	reg := obs.NewRegistry()
	st := hedgeFixture(Options{Shards: 4, Obs: reg})
	want := st.CountrySamples("speedchecker")
	if len(want) == 0 {
		t.Fatal("fixture produced no groups")
	}

	hedged := st.WithHedge(HedgeOptions{Enabled: true, Delay: 2 * time.Millisecond})
	// The primary attempt on shard 1 stalls for much longer than the
	// hedge delay; its hedge twin runs clean.
	block := make(chan struct{})
	defer close(block)
	hedged.shardStall = func(shardIdx int, isHedge bool) {
		if shardIdx == 1 && !isHedge {
			select {
			case <-block:
			case <-time.After(2 * time.Second): // fail-safe, not expected
			}
		}
	}

	got := hedged.CountrySamples("speedchecker")
	if !reflect.DeepEqual(got, want) {
		t.Errorf("hedged query diverges from unhedged:\ngot  %d groups\nwant %d groups", len(got), len(want))
	}
	fired := reg.Counter("store_hedges_fired_total").Load()
	won := reg.Counter("store_hedges_won_total").Load()
	if fired == 0 {
		t.Error("no hedge fired against a stalled shard")
	}
	if won == 0 {
		t.Error("hedge fired but never won against a 2s stall")
	}
	if won > fired {
		t.Errorf("hedges won (%d) exceeds hedges fired (%d)", won, fired)
	}
}

// With hedging disabled the fan-out must never fire a hedge, and the
// WithHedge view must share the underlying shards (same data answers).
func TestHedgeDisabledAndViewSharing(t *testing.T) {
	reg := obs.NewRegistry()
	st := hedgeFixture(Options{Shards: 4, Obs: reg})
	base := st.CountrySamples("speedchecker")
	if got := reg.Counter("store_hedges_fired_total").Load(); got != 0 {
		t.Errorf("hedges fired with hedging disabled: %d", got)
	}

	view := st.WithHedge(HedgeOptions{Enabled: true, Delay: time.Millisecond})
	if got := view.CountrySamples("speedchecker"); !reflect.DeepEqual(got, base) {
		t.Error("WithHedge view answers differently from the base store")
	}
	if !reflect.DeepEqual(view.Summary(), st.Summary()) {
		t.Error("WithHedge view has a different summary")
	}
}

// The derived hedge delay: fixed Delay wins; cold histogram falls back
// to the cold default; a warm histogram derives p95 floored at
// MinDelay.
func TestHedgeDelayDerivation(t *testing.T) {
	st := hedgeFixture(Options{Shards: 2})

	fixed := st.WithHedge(HedgeOptions{Enabled: true, Delay: 7 * time.Millisecond})
	if got := fixed.hedgeDelay(); got != 7*time.Millisecond {
		t.Errorf("fixed delay = %v, want 7ms", got)
	}

	derived := st.WithHedge(HedgeOptions{Enabled: true, MinDelay: time.Millisecond})
	if got := derived.hedgeDelay(); got != coldHedgeDelay {
		t.Errorf("cold delay = %v, want %v", got, coldHedgeDelay)
	}
	// Warm the pick histogram: 100 observations around 4–6ms put the
	// p95 well above the 1ms floor.
	for i := 0; i < 100; i++ {
		derived.mPick.Observe(4 + float64(i%3))
	}
	got := derived.hedgeDelay()
	if got < time.Millisecond || got > 50*time.Millisecond {
		t.Errorf("derived p95 delay = %v, want within (1ms, 50ms)", got)
	}
	if got == coldHedgeDelay {
		t.Errorf("warm histogram still using cold default %v", got)
	}

	// A floor above the p95 clamps upward.
	floored := st.WithHedge(HedgeOptions{Enabled: true, MinDelay: time.Second})
	for i := 0; i < 100; i++ {
		floored.mPick.Observe(0.01)
	}
	if got := floored.hedgeDelay(); got != time.Second {
		t.Errorf("floored delay = %v, want 1s", got)
	}
}

// The adaptive hedging guard: with an InFlight gauge past the limit,
// a due hedge is suppressed (counted, never fired) and the query waits
// out the stalled primary; below the limit the same query hedges as
// usual. This pins the fire-time semantics — saturation is sampled
// when the hedge timer expires, not when the query starts.
func TestHedgeSuppressedWhenSaturated(t *testing.T) {
	run := func(inflight int64) (fired, suppressed uint64) {
		reg := obs.NewRegistry()
		st := hedgeFixture(Options{Shards: 4, Obs: reg})
		hedged := st.WithHedge(HedgeOptions{
			Enabled: true, Delay: time.Millisecond,
			InFlight:      func() int64 { return inflight },
			InFlightLimit: 100,
		})
		// Stall every primary briefly so each shard's hedge timer fires.
		hedged.shardStall = func(shardIdx int, isHedge bool) {
			if !isHedge {
				time.Sleep(20 * time.Millisecond)
			}
		}
		if got := hedged.CountrySamples("speedchecker"); len(got) == 0 {
			t.Fatal("query returned no groups")
		}
		return reg.Counter("store_hedges_fired_total").Load(),
			reg.Counter("store_hedges_suppressed_total").Load()
	}

	fired, suppressed := run(10) // well under the limit of 100
	if fired == 0 {
		t.Error("unsaturated server never hedged a stalled shard")
	}
	if suppressed != 0 {
		t.Errorf("unsaturated server suppressed %d hedges", suppressed)
	}

	fired, suppressed = run(100) // at the limit: saturated
	if fired != 0 {
		t.Errorf("saturated server still fired %d hedges", fired)
	}
	if suppressed == 0 {
		t.Error("saturated server recorded no suppressed hedges")
	}
}

// Saturation semantics of the options themselves: the guard engages
// only when both the gauge and a positive limit are configured.
func TestHedgeSaturatedPredicate(t *testing.T) {
	at := func(v int64) func() int64 { return func() int64 { return v } }
	cases := []struct {
		name string
		o    HedgeOptions
		want bool
	}{
		{"no gauge", HedgeOptions{InFlightLimit: 10}, false},
		{"no limit", HedgeOptions{InFlight: at(1000)}, false},
		{"below", HedgeOptions{InFlight: at(9), InFlightLimit: 10}, false},
		{"at", HedgeOptions{InFlight: at(10), InFlightLimit: 10}, true},
		{"above", HedgeOptions{InFlight: at(11), InFlightLimit: 10}, true},
	}
	for _, c := range cases {
		if got := c.o.saturated(); got != c.want {
			t.Errorf("%s: saturated() = %v, want %v", c.name, got, c.want)
		}
	}
}
