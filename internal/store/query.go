package store

import (
	"context"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/stats"
)

// gather fans out over the shards in parallel — each shard filters its
// group map down to the requested platform, hedged against stragglers
// when hedging is enabled — and k-way merges the per-key sorted vectors
// into one sorted vector per key. The merged vectors may alias shard
// memory and must be treated as read-only.
func (s *Store) gather(pick func(*shard) map[groupKey][]float64, platform string) map[string][]float64 {
	defer obs.Time(s.mMerge)()
	perShard := make([]map[string][]float64, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			perShard[i] = s.queryShard(i, sh, pick, platform)
		}(i, sh)
	}
	wg.Wait()

	vecsByKey := map[string][][]float64{}
	for _, groups := range perShard {
		for name, xs := range groups {
			vecsByKey[name] = append(vecsByKey[name], xs)
		}
	}
	out := make(map[string][]float64, len(vecsByKey))
	var mu sync.Mutex
	for name, vecs := range vecsByKey {
		wg.Add(1)
		go func(name string, vecs [][]float64) {
			defer wg.Done()
			merged := mergeSorted(vecs)
			mu.Lock()
			out[name] = merged
			mu.Unlock()
		}(name, vecs)
	}
	wg.Wait()
	return out
}

// queryShard runs one shard's pick-and-filter, hedged: if the primary
// attempt has not answered within the hedge delay (p95 of recent shard
// queries, or the configured fixed delay), a second identical attempt
// launches and the first response wins; the loser's context is
// cancelled so it stops filtering mid-map. Hedging an immutable
// in-memory shard re-reads the same frozen data, so whichever attempt
// wins, the answer is identical — the hedge buys tail latency, never
// consistency.
func (s *Store) queryShard(idx int, sh *shard, pick func(*shard) map[groupKey][]float64, platform string) map[string][]float64 {
	if !s.hedge.Enabled {
		return s.runPick(context.Background(), idx, sh, pick, platform, false)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // stops the losing attempt

	type attempt struct {
		groups map[string][]float64
		hedged bool
	}
	results := make(chan attempt, 2)
	run := func(hedged bool) {
		if groups := s.runPick(ctx, idx, sh, pick, platform, hedged); groups != nil {
			results <- attempt{groups, hedged}
		}
	}
	go run(false)
	select {
	case r := <-results:
		return r.groups
	case <-obs.After(s.hedgeDelay()):
		if s.hedge.saturated() {
			// Adaptive gate: the server is at its admission ceiling, so a
			// duplicate attempt would steal CPU from live requests. Wait
			// for the primary instead of hedging.
			s.mHedgesSupp.Inc()
			r := <-results
			return r.groups
		}
		s.mHedgesFired.Inc()
		go run(true)
		// A cancelled attempt returns nil without sending, and we only
		// cancel after receiving — so exactly the winner arrives here.
		r := <-results
		if r.hedged {
			s.mHedgesWon.Inc()
		}
		return r.groups
	}
}

// runPick filters one shard's group map down to the platform, checking
// for cancellation every few groups so a losing hedge attempt stops
// early. Returns nil if cancelled.
func (s *Store) runPick(ctx context.Context, idx int, sh *shard, pick func(*shard) map[groupKey][]float64, platform string, hedged bool) map[string][]float64 {
	defer obs.Time(s.mPick)()
	if s.shardStall != nil {
		s.shardStall(idx, hedged) // test seam: simulated straggler
	}
	groups := pick(sh)
	out := make(map[string][]float64, len(groups))
	n := 0
	for g, xs := range groups {
		if n++; n&63 == 0 && ctx.Err() != nil {
			return nil
		}
		if g.platform == platform {
			out[g.name] = xs
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	return out
}

// coldHedgeDelay is the hedge trigger before enough shard queries have
// been observed to derive a p95.
const coldHedgeDelay = time.Millisecond

// hedgeMinObservations is how many shard-query latencies must exist
// before the derived delay is trusted over coldHedgeDelay.
const hedgeMinObservations = 32

// hedgeDelay is how long the primary attempt may run before a hedge
// fires: the fixed configured delay, or the p95 of observed shard-query
// latency floored at MinDelay — hedging earlier than the p95 would
// hedge one query in twenty on noise alone.
func (s *Store) hedgeDelay() time.Duration {
	if s.hedge.Delay > 0 {
		return s.hedge.Delay
	}
	snap := s.mPick.Snapshot()
	if snap.Count < hedgeMinObservations {
		return coldHedgeDelay
	}
	d := time.Duration(snap.Quantile(0.95) * float64(time.Millisecond))
	if d < s.hedge.MinDelay {
		d = s.hedge.MinDelay
	}
	return d
}

// CountrySamples returns the platform's nearest-DC RTT samples merged
// per VP country, each vector sorted ascending.
func (s *Store) CountrySamples(platform string) map[string][]float64 {
	return s.gather(func(sh *shard) map[groupKey][]float64 { return sh.byCountry }, platform)
}

// ContinentSamples returns the platform's nearest-DC RTT samples merged
// per VP continent, each vector sorted ascending.
func (s *Store) ContinentSamples(platform string) map[geo.Continent][]float64 {
	byName := s.gather(func(sh *shard) map[groupKey][]float64 { return sh.byContinent }, platform)
	out := make(map[geo.Continent][]float64, len(byName))
	for name, xs := range byName {
		cont, err := geo.ParseContinent(name)
		if err != nil {
			continue
		}
		out[cont] = xs
	}
	return out
}

// LatencyMap answers the Figure 3 query from the sharded vectors,
// identically to the batch analysis.LatencyMap pass.
func (s *Store) LatencyMap(minSamples int) []analysis.CountryLatency {
	return analysis.LatencyMapFrom(s.CountrySamples("speedchecker"), minSamples)
}

// ContinentCDFs answers the Figure 4 query for one platform.
func (s *Store) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	return analysis.ContinentDistributionsFrom(s.ContinentSamples(platform))
}

// PlatformDiff answers the Figure 5 query.
func (s *Store) PlatformDiff() []analysis.PlatformDiff {
	return analysis.PlatformComparisonFrom(
		s.ContinentSamples("speedchecker"), s.ContinentSamples("atlas"))
}

// PeeringShares answers the Figure 10 query from the merged
// interconnection tallies.
func (s *Store) PeeringShares() []analysis.InterconnectShare {
	return analysis.InterconnectionsFromCounts(s.peering)
}

// CountryQuantiles returns the requested quantiles of one country's
// nearest-DC distribution together with the sample count, merging the
// country's pre-sorted shard vectors instead of re-sorting. It returns
// stats.ErrEmpty when the country has no samples.
func (s *Store) CountryQuantiles(platform, country string, qs ...float64) ([]float64, int, error) {
	vecs := make([][]float64, 0, len(s.shards))
	for _, sh := range s.shards {
		if xs := sh.byCountry[groupKey{platform, country}]; len(xs) > 0 {
			vecs = append(vecs, xs)
		}
	}
	merged := mergeSorted(vecs)
	out, err := stats.QuantilesSorted(merged, qs...)
	if err != nil {
		return nil, 0, err
	}
	return out, len(merged), nil
}
