package store

import (
	"sync"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/stats"
)

// gather fans out over the shards in parallel, picks one group map from
// each, and k-way merges the per-key sorted vectors into one sorted
// vector per key. The merged vectors may alias shard memory and must be
// treated as read-only.
func (s *Store) gather(pick func(*shard) map[groupKey][]float64, platform string) map[string][]float64 {
	defer obs.Time(s.mMerge)()
	perShard := make([]map[groupKey][]float64, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			perShard[i] = pick(sh)
		}(i, sh)
	}
	wg.Wait()

	vecsByKey := map[string][][]float64{}
	for _, groups := range perShard {
		for g, xs := range groups {
			if g.platform == platform {
				vecsByKey[g.name] = append(vecsByKey[g.name], xs)
			}
		}
	}
	out := make(map[string][]float64, len(vecsByKey))
	var mu sync.Mutex
	for name, vecs := range vecsByKey {
		wg.Add(1)
		go func(name string, vecs [][]float64) {
			defer wg.Done()
			merged := mergeSorted(vecs)
			mu.Lock()
			out[name] = merged
			mu.Unlock()
		}(name, vecs)
	}
	wg.Wait()
	return out
}

// CountrySamples returns the platform's nearest-DC RTT samples merged
// per VP country, each vector sorted ascending.
func (s *Store) CountrySamples(platform string) map[string][]float64 {
	return s.gather(func(sh *shard) map[groupKey][]float64 { return sh.byCountry }, platform)
}

// ContinentSamples returns the platform's nearest-DC RTT samples merged
// per VP continent, each vector sorted ascending.
func (s *Store) ContinentSamples(platform string) map[geo.Continent][]float64 {
	byName := s.gather(func(sh *shard) map[groupKey][]float64 { return sh.byContinent }, platform)
	out := make(map[geo.Continent][]float64, len(byName))
	for name, xs := range byName {
		cont, err := geo.ParseContinent(name)
		if err != nil {
			continue
		}
		out[cont] = xs
	}
	return out
}

// LatencyMap answers the Figure 3 query from the sharded vectors,
// identically to the batch analysis.LatencyMap pass.
func (s *Store) LatencyMap(minSamples int) []analysis.CountryLatency {
	return analysis.LatencyMapFrom(s.CountrySamples("speedchecker"), minSamples)
}

// ContinentCDFs answers the Figure 4 query for one platform.
func (s *Store) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	return analysis.ContinentDistributionsFrom(s.ContinentSamples(platform))
}

// PlatformDiff answers the Figure 5 query.
func (s *Store) PlatformDiff() []analysis.PlatformDiff {
	return analysis.PlatformComparisonFrom(
		s.ContinentSamples("speedchecker"), s.ContinentSamples("atlas"))
}

// PeeringShares answers the Figure 10 query from the merged
// interconnection tallies.
func (s *Store) PeeringShares() []analysis.InterconnectShare {
	return analysis.InterconnectionsFromCounts(s.peering)
}

// CountryQuantiles returns the requested quantiles of one country's
// nearest-DC distribution together with the sample count, merging the
// country's pre-sorted shard vectors instead of re-sorting. It returns
// stats.ErrEmpty when the country has no samples.
func (s *Store) CountryQuantiles(platform, country string, qs ...float64) ([]float64, int, error) {
	vecs := make([][]float64, 0, len(s.shards))
	for _, sh := range s.shards {
		if xs := sh.byCountry[groupKey{platform, country}]; len(xs) > 0 {
			vecs = append(vecs, xs)
		}
	}
	merged := mergeSorted(vecs)
	out, err := stats.QuantilesSorted(merged, qs...)
	if err != nil {
		return nil, 0, err
	}
	return out, len(merged), nil
}
