package store

import (
	"context"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// gather fans out over the shards in parallel — each shard restricts
// the requested dimension to the query window (zone-map pruning over
// its time partitions) and filters down to the platform, hedged against
// stragglers when hedging is enabled — and k-way merges the per-key
// sorted vectors into one sorted vector per key. The merged vectors may
// alias shard memory and must be treated as read-only.
func (s *Store) gather(dim dimension, w Window, platform string) map[string][]float64 {
	defer obs.Time(s.mMerge)()
	pick := func(sh *shard) map[groupKey][]float64 { return sh.view(dim, w) }
	perShard := make([]map[string][]float64, len(s.shards))
	var wg sync.WaitGroup
	for i, sh := range s.shards {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			perShard[i] = s.queryShard(i, sh, pick, platform)
		}(i, sh)
	}
	wg.Wait()

	vecsByKey := map[string][][]float64{}
	for _, groups := range perShard {
		for name, xs := range groups {
			vecsByKey[name] = append(vecsByKey[name], xs)
		}
	}
	out := make(map[string][]float64, len(vecsByKey))
	var mu sync.Mutex
	for name, vecs := range vecsByKey {
		wg.Add(1)
		go func(name string, vecs [][]float64) {
			defer wg.Done()
			merged := mergeSorted(vecs)
			mu.Lock()
			out[name] = merged
			mu.Unlock()
		}(name, vecs)
	}
	wg.Wait()
	return out
}

// queryShard runs one shard's pick-and-filter, hedged: if the primary
// attempt has not answered within the hedge delay (p95 of recent shard
// queries, or the configured fixed delay), a second identical attempt
// launches and the first response wins; the loser's context is
// cancelled so it stops filtering mid-map. Hedging an immutable
// in-memory shard re-reads the same frozen data, so whichever attempt
// wins, the answer is identical — the hedge buys tail latency, never
// consistency.
func (s *Store) queryShard(idx int, sh *shard, pick func(*shard) map[groupKey][]float64, platform string) map[string][]float64 {
	if !s.hedge.Enabled {
		return s.runPick(context.Background(), idx, sh, pick, platform, false)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // stops the losing attempt

	type attempt struct {
		groups map[string][]float64
		hedged bool
	}
	results := make(chan attempt, 2)
	run := func(hedged bool) {
		if groups := s.runPick(ctx, idx, sh, pick, platform, hedged); groups != nil {
			results <- attempt{groups, hedged}
		}
	}
	go run(false)
	select {
	case r := <-results:
		return r.groups
	case <-obs.After(s.hedgeDelay()):
		if s.hedge.saturated() {
			// Adaptive gate: the server is at its admission ceiling, so a
			// duplicate attempt would steal CPU from live requests. Wait
			// for the primary instead of hedging.
			s.mHedgesSupp.Inc()
			r := <-results
			return r.groups
		}
		s.mHedgesFired.Inc()
		go run(true)
		// A cancelled attempt returns nil without sending, and we only
		// cancel after receiving — so exactly the winner arrives here.
		r := <-results
		if r.hedged {
			s.mHedgesWon.Inc()
		}
		return r.groups
	}
}

// runPick filters one shard's group map down to the platform, checking
// for cancellation every few groups so a losing hedge attempt stops
// early. Returns nil if cancelled.
func (s *Store) runPick(ctx context.Context, idx int, sh *shard, pick func(*shard) map[groupKey][]float64, platform string, hedged bool) map[string][]float64 {
	defer obs.Time(s.mPick)()
	if s.shardStall != nil {
		s.shardStall(idx, hedged) // test seam: simulated straggler
	}
	groups := pick(sh)
	out := make(map[string][]float64, len(groups))
	n := 0
	for g, xs := range groups {
		if n++; n&63 == 0 && ctx.Err() != nil {
			return nil
		}
		if g.platform == platform {
			out[g.name] = xs
		}
	}
	if ctx.Err() != nil {
		return nil
	}
	return out
}

// coldHedgeDelay is the hedge trigger before enough shard queries have
// been observed to derive a p95.
const coldHedgeDelay = time.Millisecond

// hedgeMinObservations is how many shard-query latencies must exist
// before the derived delay is trusted over coldHedgeDelay.
const hedgeMinObservations = 32

// hedgeDelay is how long the primary attempt may run before a hedge
// fires: the fixed configured delay, or the p95 of observed shard-query
// latency floored at MinDelay — hedging earlier than the p95 would
// hedge one query in twenty on noise alone.
func (s *Store) hedgeDelay() time.Duration {
	if s.hedge.Delay > 0 {
		return s.hedge.Delay
	}
	snap := s.mPick.Snapshot()
	if snap.Count < hedgeMinObservations {
		return coldHedgeDelay
	}
	d := time.Duration(snap.Quantile(0.95) * float64(time.Millisecond))
	if d < s.hedge.MinDelay {
		d = s.hedge.MinDelay
	}
	return d
}

// CountrySamples returns the platform's nearest-DC RTT samples merged
// per VP country, each vector sorted ascending.
func (s *Store) CountrySamples(platform string) map[string][]float64 {
	return s.CountrySamplesWindow(platform, Window{})
}

// CountrySamplesWindow is CountrySamples restricted to a cycle window.
func (s *Store) CountrySamplesWindow(platform string, w Window) map[string][]float64 {
	return s.gather(dimCountry, w, platform)
}

// ContinentSamples returns the platform's nearest-DC RTT samples merged
// per VP continent, each vector sorted ascending.
func (s *Store) ContinentSamples(platform string) map[geo.Continent][]float64 {
	return s.ContinentSamplesWindow(platform, Window{})
}

// ContinentSamplesWindow is ContinentSamples restricted to a cycle
// window.
func (s *Store) ContinentSamplesWindow(platform string, w Window) map[geo.Continent][]float64 {
	byName := s.gather(dimContinent, w, platform)
	out := make(map[geo.Continent][]float64, len(byName))
	for name, xs := range byName {
		cont, err := geo.ParseContinent(name)
		if err != nil {
			continue
		}
		out[cont] = xs
	}
	return out
}

// LatencyMap answers the Figure 3 query from the sharded vectors,
// identically to the batch analysis.LatencyMap pass.
func (s *Store) LatencyMap(minSamples int) []analysis.CountryLatency {
	return s.LatencyMapWindow(minSamples, Window{})
}

// LatencyMapWindow is LatencyMap restricted to a cycle window.
func (s *Store) LatencyMapWindow(minSamples int, w Window) []analysis.CountryLatency {
	return analysis.LatencyMapFrom(s.CountrySamplesWindow("speedchecker", w), minSamples)
}

// ContinentCDFs answers the Figure 4 query for one platform.
func (s *Store) ContinentCDFs(platform string) []analysis.ContinentDistribution {
	return s.ContinentCDFsWindow(platform, Window{})
}

// ContinentCDFsWindow is ContinentCDFs restricted to a cycle window.
func (s *Store) ContinentCDFsWindow(platform string, w Window) []analysis.ContinentDistribution {
	return analysis.ContinentDistributionsFrom(s.ContinentSamplesWindow(platform, w))
}

// PlatformDiff answers the Figure 5 query.
func (s *Store) PlatformDiff() []analysis.PlatformDiff {
	return s.PlatformDiffWindow(Window{})
}

// PlatformDiffWindow is PlatformDiff restricted to a cycle window.
func (s *Store) PlatformDiffWindow(w Window) []analysis.PlatformDiff {
	return analysis.PlatformComparisonFrom(
		s.ContinentSamplesWindow("speedchecker", w), s.ContinentSamplesWindow("atlas", w))
}

// PeeringShares answers the Figure 10 query from the merged
// interconnection tallies.
func (s *Store) PeeringShares() []analysis.InterconnectShare {
	return s.PeeringSharesWindow(Window{})
}

// PeeringSharesWindow is PeeringShares restricted to a cycle window:
// tallies from partitions overlapping the window sum by addition.
// Peering tallies are kept at partition granularity (traces are folded
// in as their partition's window closes), so a window cutting through
// a partition includes that whole partition's tallies.
func (s *Store) PeeringSharesWindow(w Window) []analysis.InterconnectShare {
	merged := map[string]map[pipeline.Class]int{}
	for i, part := range s.peering {
		if !s.partWindows[i].OverlapsWindow(w) {
			continue
		}
		for prov, classes := range part {
			dst := merged[prov]
			if dst == nil {
				dst = map[pipeline.Class]int{}
				merged[prov] = dst
			}
			for cl, n := range classes {
				dst[cl] += n
			}
		}
	}
	return analysis.InterconnectionsFromCounts(merged)
}

// CountryQuantiles returns the requested quantiles of one country's
// nearest-DC distribution together with the sample count, merging the
// country's pre-sorted shard vectors instead of re-sorting. It returns
// stats.ErrEmpty when the country has no samples.
func (s *Store) CountryQuantiles(platform, country string, qs ...float64) ([]float64, int, error) {
	return s.CountryQuantilesWindow(platform, country, Window{}, qs...)
}

// CountryQuantilesWindow is CountryQuantiles restricted to a cycle
// window.
func (s *Store) CountryQuantilesWindow(platform, country string, w Window, qs ...float64) ([]float64, int, error) {
	var vecs [][]float64
	for _, sh := range s.shards {
		vecs = append(vecs, sh.keyVectors(dimCountry, groupKey{platform, country}, w)...)
	}
	merged := mergeSorted(vecs)
	out, err := stats.QuantilesSorted(merged, qs...)
	if err != nil {
		return nil, 0, err
	}
	return out, len(merged), nil
}

// PairSamples returns the platform's nearest-DC samples merged per
// (VP country, provider) pair inside the window, each vector sorted
// ascending — the grouping the changepoint detector scans.
func (s *Store) PairSamples(platform string, w Window) map[string][]float64 {
	return s.gather(dimPair, w, platform)
}

// ChangepointEntry is one country×provider pair scored for a
// median-RTT shift between the windows on either side of a cycle.
type ChangepointEntry struct {
	Country        string  `json:"country"`
	Provider       string  `json:"provider"`
	NBefore        int     `json:"n_before"`
	NAfter         int     `json:"n_after"`
	MedianBeforeMs float64 `json:"median_before_ms,omitempty"`
	MedianAfterMs  float64 `json:"median_after_ms,omitempty"`
	DeltaMs        float64 `json:"delta_ms"`
	// Shift is the Mann-Whitney AUC score P(after > before) + ½P(=):
	// 0.5 means no shift, near 1 a regression, near 0 an improvement.
	Shift float64 `json:"shift"`
	// Status distinguishes pairs present on both sides ("") from pairs
	// that only appear after the cycle ("appeared" — e.g. a region
	// launch) or only before it ("disappeared").
	Status string `json:"status,omitempty"`
}

// Changepoint ranks country×provider pairs by the RTT shift between
// the window before cycle `at` and the window from `at` on. A width of
// w cycles compares [at-w, at) against [at, at+w); width <= 0 compares
// everything before against everything after. Two-sided pairs sort by
// shift score descending (worst regression first, ties by delta);
// one-sided pairs follow, appeared before disappeared.
func (s *Store) Changepoint(platform string, at, width int) []ChangepointEntry {
	before := Window{To: at}
	after := Window{From: at}
	if width > 0 {
		if f := at - width; f > 0 {
			before.From = f
		}
		after.To = at + width
	}
	return ChangepointFrom(s.PairSamples(platform, before), s.PairSamples(platform, after))
}

// ChangepointFrom scores and ranks the changepoint comparison given
// the per-pair sorted sample vectors on either side of the cycle. It
// is the pure tail of Changepoint, shared with the segment reader
// (internal/segment) so both store backends produce bit-identical
// rankings from the same vectors.
func ChangepointFrom(pre, post map[string][]float64) []ChangepointEntry {
	names := make(map[string]struct{}, len(pre)+len(post))
	for n := range pre {
		names[n] = struct{}{}
	}
	for n := range post {
		names[n] = struct{}{}
	}
	out := make([]ChangepointEntry, 0, len(names))
	for n := range names {
		country, provider := splitPair(n)
		e := ChangepointEntry{Country: country, Provider: provider,
			NBefore: len(pre[n]), NAfter: len(post[n]), Shift: 0.5}
		switch {
		case e.NBefore == 0 && e.NAfter == 0:
			continue
		case e.NBefore == 0:
			e.Status = "appeared"
			e.MedianAfterMs, _ = stats.MedianSorted(post[n])
		case e.NAfter == 0:
			e.Status = "disappeared"
			e.MedianBeforeMs, _ = stats.MedianSorted(pre[n])
		default:
			e.MedianBeforeMs, _ = stats.MedianSorted(pre[n])
			e.MedianAfterMs, _ = stats.MedianSorted(post[n])
			e.DeltaMs = e.MedianAfterMs - e.MedianBeforeMs
			e.Shift = stats.MannWhitneyShift(pre[n], post[n])
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Status == "") != (b.Status == "") {
			return a.Status == "" // scored pairs first
		}
		if a.Status != b.Status {
			return a.Status < b.Status // "appeared" before "disappeared"
		}
		//lint:ignore floateq ordering comparator: exactly-equal scores fall through to the next tie-break
		if a.Shift != b.Shift {
			return a.Shift > b.Shift
		}
		//lint:ignore floateq ordering comparator: exactly-equal deltas fall through to the next tie-break
		if a.DeltaMs != b.DeltaMs {
			return a.DeltaMs > b.DeltaMs
		}
		if a.Country != b.Country {
			return a.Country < b.Country
		}
		return a.Provider < b.Provider
	})
	return out
}
