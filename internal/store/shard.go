package store

import (
	"container/heap"
	"sort"

	"repro/internal/geo"
	"repro/internal/stats"
)

// groupKey addresses one pre-sorted RTT vector inside a shard
// partition: samples of one platform grouped by country (byCountry),
// by continent (byContinent, name = Continent.String()), or by
// country×provider pair (byPair, name = country + "|" + provider).
type groupKey struct {
	platform string
	name     string
}

// pairName builds (and splitPair splits) the byPair group name.
func pairName(country, provider string) string { return country + "|" + provider }

func splitPair(name string) (country, provider string) {
	for i := 0; i < len(name); i++ {
		if name[i] == '|' {
			return name[:i], name[i+1:]
		}
	}
	return name, ""
}

// dimension selects one of a partition's group maps.
type dimension uint8

const (
	dimCountry dimension = iota
	dimContinent
	dimPair
)

// shardBuilder is the mutable, single-writer ingest side of a shard:
// plain columnar appends, no sorting until seal.
type shardBuilder struct {
	// Column slices, one entry per ingested sample, in arrival order.
	platform  []string
	country   []string
	continent []geo.Continent
	provider  []string
	rtt       []float64
	cycle     []int32
}

func (sb *shardBuilder) add(s Sample) {
	sb.platform = append(sb.platform, s.Platform)
	sb.country = append(sb.country, s.Country)
	sb.continent = append(sb.continent, s.Continent)
	sb.provider = append(sb.provider, s.Provider)
	sb.rtt = append(sb.rtt, s.RTTms)
	sb.cycle = append(sb.cycle, int32(s.Cycle))
}

// vec is one group's samples: RTTs sorted ascending with the campaign
// cycle of each observation carried alongside, index-aligned. The
// cycles let a query window that cuts through a partition filter rows
// exactly; whole-partition reads never touch them.
type vec struct {
	rtt   []float64
	cycle []int32
}

// shardPart is one sealed time partition of a shard: the rows whose
// cycle falls inside window, with per-group RTT vectors sorted
// ascending and a [minCycle, maxCycle] zone map for pruning.
type shardPart struct {
	window   Window
	rows     int
	minCycle int
	maxCycle int

	byCountry   map[groupKey]vec
	byContinent map[groupKey]vec
	byPair      map[groupKey]vec
}

func newShardPart(w Window) *shardPart {
	return &shardPart{
		window:      w,
		byCountry:   map[groupKey]vec{},
		byContinent: map[groupKey]vec{},
		byPair:      map[groupKey]vec{},
	}
}

func (p *shardPart) groups(dim dimension) map[groupKey]vec {
	switch dim {
	case dimCountry:
		return p.byCountry
	case dimContinent:
		return p.byContinent
	default:
		return p.byPair
	}
}

func (p *shardPart) addTo(dim dimension, k groupKey, rtt float64, cycle int32) {
	m := p.groups(dim)
	v := m[k]
	v.rtt = append(v.rtt, rtt)
	v.cycle = append(v.cycle, cycle)
	m[k] = v
}

// covered reports whether every row of the partition falls inside the
// query window — the fast path that aliases the partition's vectors
// instead of filtering them.
func (p *shardPart) covered(w Window) bool {
	return w.Contains(p.minCycle) && w.Contains(p.maxCycle)
}

// filter returns the subsequence of v whose cycles fall inside the
// window. v is sorted by RTT and filtering preserves order.
func (v vec) filter(w Window) []float64 {
	var out []float64
	for i, c := range v.cycle {
		if w.Contains(int(c)) {
			out = append(out, v.rtt[i])
		}
	}
	return out
}

// shard is the sealed, read-only form: time partitions of per-group
// sorted RTT vectors, plus shard-global summaries. The global Welford
// accumulates in arrival order regardless of the partition count, so
// summary statistics are bit-identical across partition layouts of the
// same stream.
type shard struct {
	rows         int
	parts        []*shardPart
	providers    map[string]struct{}
	platformRows map[string]int
	rtt          stats.Welford
}

func (sb *shardBuilder) seal(opts Options) *shard {
	sh := &shard{
		rows:         len(sb.rtt),
		parts:        make([]*shardPart, opts.Partitions),
		providers:    map[string]struct{}{},
		platformRows: map[string]int{},
	}
	for i := range sh.parts {
		sh.parts[i] = newShardPart(opts.partitionWindow(i))
	}
	for i, rtt := range sb.rtt {
		plat := sb.platform[i]
		cyc := sb.cycle[i]
		p := sh.parts[opts.partitionIndex(int(cyc))]
		if p.rows == 0 || int(cyc) < p.minCycle {
			p.minCycle = int(cyc)
		}
		if int(cyc) > p.maxCycle {
			p.maxCycle = int(cyc)
		}
		p.rows++
		p.addTo(dimCountry, groupKey{plat, sb.country[i]}, rtt, cyc)
		p.addTo(dimContinent, groupKey{plat, sb.continent[i].String()}, rtt, cyc)
		p.addTo(dimPair, groupKey{plat, pairName(sb.country[i], sb.provider[i])}, rtt, cyc)
		sh.providers[sb.provider[i]] = struct{}{}
		sh.platformRows[plat]++
		sh.rtt.Add(rtt)
	}
	for _, p := range sh.parts {
		p.sortVecs()
	}
	return sh
}

func (p *shardPart) sortVecs() {
	for _, m := range []map[groupKey]vec{p.byCountry, p.byContinent, p.byPair} {
		for _, v := range m {
			sortVec(v)
		}
	}
}

// sortVec orders a group's rows by RTT, keeping the cycle column
// aligned. The stable sort makes the cycle permutation deterministic
// under ties; the RTT value sequence itself equals a plain
// sort.Float64s of the same multiset, so partition layout never changes
// the bits a query returns.
func sortVec(v vec) {
	sort.Stable(byRTT(v))
}

type byRTT vec

func (v byRTT) Len() int           { return len(v.rtt) }
func (v byRTT) Less(i, j int) bool { return v.rtt[i] < v.rtt[j] }
func (v byRTT) Swap(i, j int) {
	v.rtt[i], v.rtt[j] = v.rtt[j], v.rtt[i]
	v.cycle[i], v.cycle[j] = v.cycle[j], v.cycle[i]
}

// view materializes one dimension of the shard restricted to the query
// window: partitions whose zone map misses the window are pruned,
// fully-covered partitions alias their frozen vectors, and straddled
// partitions filter row-by-row. Per key, the surviving sorted vectors
// merge into one; callers must treat the result as read-only.
func (sh *shard) view(dim dimension, w Window) map[groupKey][]float64 {
	perPart := make([]map[groupKey][]float64, 0, len(sh.parts))
	for _, p := range sh.parts {
		if p.rows == 0 || !w.Overlaps(p.minCycle, p.maxCycle) {
			continue
		}
		m := p.groups(dim)
		out := make(map[groupKey][]float64, len(m))
		if p.covered(w) {
			for k, v := range m {
				out[k] = v.rtt
			}
		} else {
			for k, v := range m {
				if xs := v.filter(w); len(xs) > 0 {
					out[k] = xs
				}
			}
		}
		perPart = append(perPart, out)
	}
	if len(perPart) == 1 {
		return perPart[0]
	}
	vecsByKey := map[groupKey][][]float64{}
	for _, m := range perPart {
		for k, xs := range m {
			vecsByKey[k] = append(vecsByKey[k], xs)
		}
	}
	out := make(map[groupKey][]float64, len(vecsByKey))
	for k, vecs := range vecsByKey {
		out[k] = mergeSorted(vecs)
	}
	return out
}

// keyVectors collects one key's sorted vectors across the shard's
// overlapping partitions, window-filtered — the single-group analogue
// of view for point queries.
func (sh *shard) keyVectors(dim dimension, k groupKey, w Window) [][]float64 {
	var out [][]float64
	for _, p := range sh.parts {
		if p.rows == 0 || !w.Overlaps(p.minCycle, p.maxCycle) {
			continue
		}
		v, ok := p.groups(dim)[k]
		if !ok {
			continue
		}
		if p.covered(w) {
			if len(v.rtt) > 0 {
				out = append(out, v.rtt)
			}
		} else if xs := v.filter(w); len(xs) > 0 {
			out = append(out, xs)
		}
	}
	return out
}

// mergeSorted k-way merges ascending vectors into one ascending vector.
// For a single input it returns it as-is (shard vectors are immutable,
// so sharing is safe); callers must treat the result as read-only.
func mergeSorted(vecs [][]float64) []float64 {
	nonEmpty := vecs[:0:0]
	total := 0
	for _, v := range vecs {
		if len(v) > 0 {
			nonEmpty = append(nonEmpty, v)
			total += len(v)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		return nonEmpty[0]
	case 2:
		return merge2(nonEmpty[0], nonEmpty[1], total)
	}
	out := make([]float64, 0, total)
	h := make(mergeHeap, len(nonEmpty))
	for i, v := range nonEmpty {
		h[i] = mergeCursor{vec: v}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := &h[0]
		out = append(out, c.vec[c.pos])
		c.pos++
		if c.pos == len(c.vec) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

func merge2(a, b []float64, total int) []float64 {
	out := make([]float64, 0, total)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

type mergeCursor struct {
	vec []float64
	pos int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].vec[h[i].pos] < h[j].vec[h[j].pos] }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
