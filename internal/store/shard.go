package store

import (
	"container/heap"
	"sort"

	"repro/internal/geo"
	"repro/internal/stats"
)

// groupKey addresses one pre-sorted RTT vector inside a shard: samples
// of one platform grouped by country (dim = byCountry) or by continent
// (dim = byContinent, name = Continent.String()).
type groupKey struct {
	platform string
	name     string
}

// shardBuilder is the mutable, single-writer ingest side of a shard:
// plain columnar appends, no sorting until seal.
type shardBuilder struct {
	// Column slices, one entry per ingested sample, in arrival order.
	platform  []string
	country   []string
	continent []geo.Continent
	provider  []string
	rtt       []float64
}

func (sb *shardBuilder) add(s Sample) {
	sb.platform = append(sb.platform, s.Platform)
	sb.country = append(sb.country, s.Country)
	sb.continent = append(sb.continent, s.Continent)
	sb.provider = append(sb.provider, s.Provider)
	sb.rtt = append(sb.rtt, s.RTTms)
}

// shard is the sealed, read-only form: per-group RTT vectors sorted
// ascending exactly once, plus incremental summaries.
type shard struct {
	rows         int
	byCountry    map[groupKey][]float64 // sorted ascending
	byContinent  map[groupKey][]float64 // sorted ascending
	providers    map[string]struct{}
	platformRows map[string]int
	rtt          stats.Welford
}

func (sb *shardBuilder) seal() *shard {
	sh := &shard{
		rows:         len(sb.rtt),
		byCountry:    map[groupKey][]float64{},
		byContinent:  map[groupKey][]float64{},
		providers:    map[string]struct{}{},
		platformRows: map[string]int{},
	}
	for i, rtt := range sb.rtt {
		plat := sb.platform[i]
		ck := groupKey{plat, sb.country[i]}
		sh.byCountry[ck] = append(sh.byCountry[ck], rtt)
		nk := groupKey{plat, sb.continent[i].String()}
		sh.byContinent[nk] = append(sh.byContinent[nk], rtt)
		sh.providers[sb.provider[i]] = struct{}{}
		sh.platformRows[plat]++
		sh.rtt.Add(rtt)
	}
	for _, xs := range sh.byCountry {
		sort.Float64s(xs)
	}
	for _, xs := range sh.byContinent {
		sort.Float64s(xs)
	}
	return sh
}

// mergeSorted k-way merges ascending vectors into one ascending vector.
// For a single input it returns it as-is (shard vectors are immutable,
// so sharing is safe); callers must treat the result as read-only.
func mergeSorted(vecs [][]float64) []float64 {
	nonEmpty := vecs[:0:0]
	total := 0
	for _, v := range vecs {
		if len(v) > 0 {
			nonEmpty = append(nonEmpty, v)
			total += len(v)
		}
	}
	switch len(nonEmpty) {
	case 0:
		return nil
	case 1:
		return nonEmpty[0]
	case 2:
		return merge2(nonEmpty[0], nonEmpty[1], total)
	}
	out := make([]float64, 0, total)
	h := make(mergeHeap, len(nonEmpty))
	for i, v := range nonEmpty {
		h[i] = mergeCursor{vec: v}
	}
	heap.Init(&h)
	for len(h) > 0 {
		c := &h[0]
		out = append(out, c.vec[c.pos])
		c.pos++
		if c.pos == len(c.vec) {
			heap.Pop(&h)
		} else {
			heap.Fix(&h, 0)
		}
	}
	return out
}

func merge2(a, b []float64, total int) []float64 {
	out := make([]float64, 0, total)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

type mergeCursor struct {
	vec []float64
	pos int
}

type mergeHeap []mergeCursor

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return h[i].vec[h[i].pos] < h[j].vec[h[j].pos] }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeCursor)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
