// Package store implements an immutable, sharded, column-oriented
// measurement store over campaign results. Measurements are ingested
// once — from a live campaign or a dataset export stream — hashed into
// N shards by <VP country, provider>, and each shard keeps columnar
// slices plus pre-sorted per-group RTT vectors and incremental Welford
// summaries. Median, arbitrary-quantile and CDF queries are then
// answered by fanning out over the shards in parallel and k-way merging
// their already-sorted vectors, never re-sorting the full dataset.
//
// The store holds the nearest-datacenter reduction of the campaign (the
// §4.1 view every latency figure shares) plus the per-provider
// interconnection tallies of §6, which is exactly what the query
// service in internal/serve exposes.
package store

import (
	"hash/fnv"
	"sort"
	"strconv"
	"time"

	"repro/internal/analysis"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/sample"
	"repro/internal/stats"
)

// Window re-exports the campaign cycle window: queries scoped to a
// half-open [From, To) cycle interval; the zero value selects the whole
// campaign.
type Window = sample.Window

// Options sizes the store.
type Options struct {
	// Shards is the shard count (default 8). More shards raise ingest
	// and query parallelism at the cost of merge fan-in.
	Shards int
	// Partitions is the time-partition count per shard (default 1 — one
	// partition spanning the whole campaign, the pre-longitudinal
	// layout). Each partition covers a contiguous cycle window; windowed
	// queries fan out only to partitions whose zone map overlaps the
	// window.
	Partitions int
	// Cycles is the campaign cycle count the partition windows divide.
	// Zero defaults to Partitions (one cycle per partition); cycles at
	// or past the end clamp into the last partition.
	Cycles int
	// Hedge configures straggler hedging in the query fan-out.
	Hedge HedgeOptions
	// Obs registers the store's instruments: feed ingest counters,
	// seal latency, per-shard row gauges and query merge latency. Nil
	// runs uninstrumented. The store itself never reads the wall clock
	// (it is deterministic-scope; see internal/lint); timing happens
	// through obs.Time and obs.After, where the clock reads are
	// allowlisted.
	Obs *obs.Registry
}

// HedgeOptions tunes the hedged shard fan-out: when a shard query has
// not answered within the hedge delay, a duplicate attempt launches
// and the first response wins (the loser is cancelled). Because shards
// are immutable, a hedge can only trade duplicated work for tail
// latency — never a different answer.
type HedgeOptions struct {
	// Enabled turns hedging on.
	Enabled bool
	// Delay is a fixed hedge trigger. Zero derives the trigger from
	// the p95 of observed shard-query latency instead.
	Delay time.Duration
	// MinDelay floors the derived trigger so a uniformly-fast store
	// does not hedge on scheduler noise (default 200µs).
	MinDelay time.Duration
	// InFlight, when set together with InFlightLimit, reports the
	// server's current admitted-request concurrency (the admit
	// in-flight gauge). A hedge that comes due while InFlight() >=
	// InFlightLimit is suppressed instead of fired: hedging duplicates
	// work, and duplicated work on a saturated server buys tail
	// latency for one request by stealing CPU from all the others
	// (BENCH_serve shows hedging pays at low concurrency and costs at
	// CPU saturation). Suppressions are counted in
	// store_hedges_suppressed_total.
	InFlight func() int64
	// InFlightLimit is the saturation threshold for InFlight; zero
	// disables the gate.
	InFlightLimit int64
}

// saturated reports whether the adaptive gate vetoes hedging right now.
func (o HedgeOptions) saturated() bool {
	return o.InFlight != nil && o.InFlightLimit > 0 && o.InFlight() >= o.InFlightLimit
}

func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Partitions <= 0 {
		o.Partitions = 1
	}
	if o.Cycles <= 0 {
		o.Cycles = o.Partitions
	}
	if o.Hedge.MinDelay <= 0 {
		o.Hedge.MinDelay = 200 * time.Microsecond
	}
	return o
}

// partitionSpan is the cycle width each partition covers.
func (o Options) partitionSpan() int {
	span := (o.Cycles + o.Partitions - 1) / o.Partitions
	if span < 1 {
		span = 1
	}
	return span
}

// partitionIndex maps a (possibly trace-decorated) cycle to its
// partition; cycles past the campaign end clamp into the last one.
func (o Options) partitionIndex(cycle int) int {
	i := sample.CampaignCycle(cycle) / o.partitionSpan()
	if i < 0 {
		return 0
	}
	if i >= o.Partitions {
		return o.Partitions - 1
	}
	return i
}

// partitionWindow is the cycle window partition i covers. The first
// partition is unbounded below and the last unbounded above, so the
// partition set tiles the whole time axis.
func (o Options) partitionWindow(i int) Window {
	span := o.partitionSpan()
	w := Window{From: i * span, To: (i + 1) * span}
	if i == 0 {
		w.From = 0
	}
	if i == o.Partitions-1 {
		w.To = 0
	}
	return w
}

// Sample is one nearest-datacenter measurement row: a single RTT from a
// probe in Country towards its closest region, owned by Provider.
type Sample struct {
	Platform  string // "speedchecker" or "atlas"
	Country   string // VP country code
	Continent geo.Continent
	Provider  string // provider of the probe's nearest region
	RTTms     float64
	// Cycle is the normalized campaign cycle the measurement ran on —
	// the time-partitioning key.
	Cycle int
}

// Builder accumulates samples and summaries before sealing them into an
// immutable Store. It is single-writer, like every campaign sink.
type Builder struct {
	opts   Options
	shards []*shardBuilder
	// peering holds the interconnection tallies per time partition.
	peering []map[string]map[pipeline.Class]int
}

// NewBuilder returns an empty builder.
func NewBuilder(opts Options) *Builder {
	opts = opts.withDefaults()
	b := &Builder{
		opts:    opts,
		shards:  make([]*shardBuilder, opts.Shards),
		peering: make([]map[string]map[pipeline.Class]int, opts.Partitions),
	}
	for i := range b.shards {
		b.shards[i] = &shardBuilder{}
	}
	for i := range b.peering {
		b.peering[i] = map[string]map[pipeline.Class]int{}
	}
	return b
}

// shardIndex hashes the <country, provider> pair — the grouping key the
// queries slice by — so one group's rows cluster into few shards while
// distinct groups spread across all of them.
func (b *Builder) shardIndex(country, provider string) int {
	h := fnv.New32a()
	h.Write([]byte(country))
	h.Write([]byte{0xff})
	h.Write([]byte(provider))
	return int(h.Sum32() % uint32(len(b.shards)))
}

// Add ingests one sample.
func (b *Builder) Add(s Sample) {
	b.shards[b.shardIndex(s.Country, s.Provider)].add(s)
}

// AddPeeringCounts folds per-provider interconnection tallies (as
// produced by analysis.InterconnectCounts) into the store by addition.
// Counts without a time axis land in the first partition; the live feed
// uses AddPeeringCountsAt with the trace cycle instead.
func (b *Builder) AddPeeringCounts(counts map[string]map[pipeline.Class]int) {
	b.AddPeeringCountsAt(0, counts)
}

// AddPeeringCountsAt folds interconnection tallies into the partition
// covering the (possibly trace-decorated) cycle.
func (b *Builder) AddPeeringCountsAt(cycle int, counts map[string]map[pipeline.Class]int) {
	part := b.peering[b.opts.partitionIndex(cycle)]
	for prov, classes := range counts {
		dst := part[prov]
		if dst == nil {
			dst = map[pipeline.Class]int{}
			part[prov] = dst
		}
		for cl, n := range classes {
			dst[cl] += n
		}
	}
}

// Seal freezes the builder into an immutable Store: every shard sorts
// its per-group RTT vectors once and finalizes its summaries. The
// builder must not be used afterwards.
func (b *Builder) Seal() *Store {
	defer obs.Time(b.opts.Obs.Histogram("store_seal_ms", obs.LatencyBuckets))()
	partWindows := make([]Window, b.opts.Partitions)
	for i := range partWindows {
		partWindows[i] = b.opts.partitionWindow(i)
	}
	s := &Store{
		shards:       make([]*shard, len(b.shards)),
		peering:      b.peering,
		partWindows:  partWindows,
		hedge:        b.opts.Hedge,
		mMerge:       b.opts.Obs.Histogram("store_query_merge_ms", obs.LatencyBuckets),
		mPick:        b.opts.Obs.Histogram("store_shard_query_ms", obs.LatencyBuckets),
		mHedgesFired: b.opts.Obs.Counter("store_hedges_fired_total"),
		mHedgesWon:   b.opts.Obs.Counter("store_hedges_won_total"),
		mHedgesSupp:  b.opts.Obs.Counter("store_hedges_suppressed_total"),
	}
	for i, sb := range b.shards {
		s.shards[i] = sb.seal(b.opts)
	}
	s.summary = s.buildSummary()
	s.summary.Partitions = b.opts.Partitions
	s.summary.Cycles = b.opts.Cycles
	b.opts.Obs.Gauge("store_rows").Set(int64(s.summary.Rows))
	for i, sh := range s.shards {
		//lint:ignore metricname shard count is fixed at seal time, so the label set is bounded by construction
		b.opts.Obs.Gauge("store_shard_rows", "shard", strconv.Itoa(i)).Set(int64(sh.rows))
	}
	return s
}

// FromDataset builds a store from a collected dataset: the
// nearest-datacenter assignment of both platforms plus, when processed
// traceroutes are supplied, the §6 interconnection tallies. It is the
// batch adapter over Feed — one pass over the materialized pings drives
// the same incremental build a live campaign sink would.
func FromDataset(ds *dataset.Store, processed []pipeline.Processed, opts Options) *Store {
	f := NewFeed(nil, opts)
	for i := range ds.Pings {
		if err := f.Ping(ds.Pings[i]); err != nil {
			panic("store: Feed.Ping cannot fail: " + err.Error())
		}
	}
	if len(processed) > 0 {
		f.AddPeeringCounts(analysis.InterconnectCounts(processed))
	}
	return f.Seal()
}

// Store is the sealed, read-only store. All query methods are safe for
// concurrent use.
type Store struct {
	shards []*shard
	// peering holds the per-partition interconnection tallies;
	// partWindows[i] is the cycle window peering[i] (and every shard's
	// partition i) covers.
	peering     []map[string]map[pipeline.Class]int
	partWindows []Window
	summary     Summary
	hedge       HedgeOptions
	// mMerge times each gather (shard fan-out + k-way merge); mPick
	// times each per-shard pick (and feeds the p95 the hedge delay
	// derives from). Both are interned at seal so queries pay one
	// atomic observation, no registry lookup.
	mMerge       *obs.Histogram
	mPick        *obs.Histogram
	mHedgesFired *obs.Counter
	mHedgesWon   *obs.Counter
	mHedgesSupp  *obs.Counter
	// shardStall, when set (tests only), runs at the start of every
	// shard attempt so a straggler shard can be simulated.
	shardStall func(shardIdx int, hedged bool)
}

// WithHedge returns a view of the same sealed store with a different
// hedging policy. The shards, summaries and instruments are shared —
// the store stays immutable — so toggling hedging (the loadgen A/B
// comparison, a serve flag flip) costs one small allocation.
func (s *Store) WithHedge(h HedgeOptions) *Store {
	clone := *s
	if h.MinDelay <= 0 {
		h.MinDelay = 200 * time.Microsecond
	}
	clone.hedge = h
	return &clone
}

// Summary describes the sealed store for /v1/statsz and logs.
type Summary struct {
	Shards int `json:"shards"`
	// Partitions is the time-partition count per shard; Cycles is the
	// last cycle of the campaign time axis (exclusive) that the
	// partition windows divide.
	Partitions int            `json:"partitions"`
	Cycles     int            `json:"cycles"`
	Rows       int            `json:"rows"`
	Countries  int            `json:"countries"`
	Providers  int            `json:"providers"`
	Platforms  map[string]int `json:"platform_rows"`
	// Shard balance: the smallest and largest shard row counts.
	MinShardRows int `json:"min_shard_rows"`
	MaxShardRows int `json:"max_shard_rows"`
	// Global RTT summary, merged from per-shard Welford accumulators.
	RTTMeanMs float64 `json:"rtt_mean_ms"`
	RTTMinMs  float64 `json:"rtt_min_ms"`
	RTTMaxMs  float64 `json:"rtt_max_ms"`
}

func (s *Store) buildSummary() Summary {
	sum := Summary{Shards: len(s.shards), Platforms: map[string]int{}}
	countries := map[string]struct{}{}
	providers := map[string]struct{}{}
	var rtt stats.Welford
	for i, sh := range s.shards {
		sum.Rows += sh.rows
		if sh.rows < sum.MinShardRows || i == 0 {
			sum.MinShardRows = sh.rows
		}
		if sh.rows > sum.MaxShardRows {
			sum.MaxShardRows = sh.rows
		}
		for _, p := range sh.parts {
			for g := range p.byCountry {
				countries[g.name] = struct{}{}
			}
		}
		for p := range sh.providers {
			providers[p] = struct{}{}
		}
		for plat, n := range sh.platformRows {
			sum.Platforms[plat] += n
		}
		rtt.Merge(&sh.rtt)
	}
	sum.Countries = len(countries)
	sum.Providers = len(providers)
	sum.RTTMeanMs = rtt.Mean()
	sum.RTTMinMs = rtt.Min()
	sum.RTTMaxMs = rtt.Max()
	return sum
}

// Summary returns the sealed store's description.
func (s *Store) Summary() Summary { return s.summary }

// Countries lists every VP country with samples for the platform,
// sorted.
func (s *Store) Countries(platform string) []string {
	set := map[string]struct{}{}
	for _, sh := range s.shards {
		for _, p := range sh.parts {
			for g := range p.byCountry {
				if g.platform == platform {
					set[g.name] = struct{}{}
				}
			}
		}
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
