package store

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/asn"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/pipeline"
	"repro/internal/stats"
)

// fixtureDataset builds a small deterministic campaign: four countries
// on three continents, two platforms, regions from three providers,
// with per-country latency floors so the nearest-DC choice is stable.
func fixtureDataset(t testing.TB) (*dataset.Store, []pipeline.Processed) {
	t.Helper()
	ip, err := netaddr.ParseIP("192.0.2.1")
	if err != nil {
		t.Fatal(err)
	}
	type region struct {
		id, prov, country string
		cont              geo.Continent
		offset            float64 // extra RTT vs the continent's closest region
	}
	regions := []region{
		{"eu-frankfurt", "AMZN", "DE", geo.EU, 0},
		{"eu-london", "GCP", "GB", geo.EU, 12},
		{"na-virginia", "MSFT", "US", geo.NA, 0},
		{"sa-saopaulo", "AMZN", "BR", geo.SA, 0},
	}
	countries := []struct {
		code string
		cont geo.Continent
		base float64
	}{
		{"DE", geo.EU, 18}, {"GB", geo.EU, 24}, {"US", geo.NA, 35}, {"BR", geo.SA, 62},
	}
	rng := rand.New(rand.NewSource(7))
	ds := &dataset.Store{}
	for _, c := range countries {
		for _, platform := range []string{"speedchecker", "atlas"} {
			for p := 0; p < 6; p++ {
				vp := dataset.VantagePoint{
					ProbeID:  platform + "-" + c.code + "-" + string(rune('a'+p)),
					Platform: platform, Country: c.code, Continent: c.cont,
					ISP: asn.Number(64500 + p), Access: lastmile.WiFi,
				}
				for _, rg := range regions {
					if rg.cont != c.cont {
						continue
					}
					target := dataset.Target{
						Region: rg.id, Provider: rg.prov, Country: rg.country,
						Continent: rg.cont, IP: ip,
					}
					for k := 0; k < 15; k++ {
						ds.AddPing(dataset.PingRecord{
							VP: vp, Target: target, Protocol: dataset.TCP,
							RTTms: c.base + rg.offset + rng.Float64()*6,
							Cycle: k,
						})
					}
				}
			}
		}
	}
	var processed []pipeline.Processed
	classes := []pipeline.Class{
		pipeline.ClassDirect, pipeline.ClassDirectIXP,
		pipeline.ClassPrivate, pipeline.ClassPublic,
	}
	for i := 0; i < 120; i++ {
		rec := &dataset.TracerouteRecord{
			VP: dataset.VantagePoint{
				ProbeID: "sc-trace", Platform: "speedchecker",
				Country: "DE", Continent: geo.EU, Access: lastmile.WiFi,
			},
			Target: dataset.Target{Provider: []string{"AMZN", "GCP", "MSFT"}[i%3]},
		}
		processed = append(processed, pipeline.Processed{
			Record: rec, Class: classes[i%len(classes)], EndToEndRTTms: 30,
		})
	}
	return ds, processed
}

func fixtureStore(t testing.TB, shards int) (*Store, *dataset.Store, []pipeline.Processed) {
	t.Helper()
	ds, processed := fixtureDataset(t)
	return FromDataset(ds, processed, Options{Shards: shards}), ds, processed
}

// The store must answer every figure query identically to the one-shot
// batch analysis pass — the acceptance bar for `cloudy serve`.
func TestStoreMatchesBatchAnalysis(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		st, ds, processed := fixtureStore(t, shards)

		if got, want := st.LatencyMap(10), analysis.LatencyMap(ds, 10); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: LatencyMap diverges from batch analysis:\ngot  %+v\nwant %+v", shards, got, want)
		}
		if got, want := st.ContinentCDFs("speedchecker"), analysis.ContinentDistributions(ds, "speedchecker"); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: ContinentCDFs diverges from batch analysis", shards)
		}
		if got, want := st.PlatformDiff(), analysis.PlatformComparison(ds); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: PlatformDiff diverges from batch analysis", shards)
		}
		if got, want := st.PeeringShares(), analysis.Interconnections(processed); !reflect.DeepEqual(got, want) {
			t.Errorf("shards=%d: PeeringShares diverges from batch analysis:\ngot  %+v\nwant %+v", shards, got, want)
		}
	}
}

func TestCountryQuantilesMatchStats(t *testing.T) {
	st, ds, _ := fixtureStore(t, 8)
	byCountry := analysis.Nearest(ds, "speedchecker").ByCountry()
	for country, xs := range byCountry {
		got, n, err := st.CountryQuantiles("speedchecker", country, 0.25, 0.5, 0.9)
		if err != nil {
			t.Fatalf("%s: %v", country, err)
		}
		if n != len(xs) {
			t.Errorf("%s: n = %d, want %d", country, n, len(xs))
		}
		want, err := stats.Quantiles(xs, 0.25, 0.5, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: quantiles = %v, want %v", country, got, want)
		}
	}
	if _, _, err := st.CountryQuantiles("speedchecker", "ZZ", 0.5); err == nil {
		t.Error("unknown country should return an error")
	}
}

func TestSummaryAndCountries(t *testing.T) {
	st, ds, _ := fixtureStore(t, 8)
	sum := st.Summary()
	wantRows := 0
	for _, platform := range []string{"speedchecker", "atlas"} {
		for _, xs := range analysis.Nearest(ds, platform).Samples {
			wantRows += len(xs)
		}
	}
	if sum.Rows != wantRows {
		t.Errorf("Rows = %d, want %d", sum.Rows, wantRows)
	}
	if sum.Shards != 8 {
		t.Errorf("Shards = %d, want 8", sum.Shards)
	}
	if sum.Countries != 4 {
		t.Errorf("Countries = %d, want 4", sum.Countries)
	}
	if sum.RTTMinMs <= 0 || sum.RTTMaxMs < sum.RTTMinMs || sum.RTTMeanMs <= 0 {
		t.Errorf("implausible RTT summary: %+v", sum)
	}
	want := []string{"BR", "DE", "GB", "US"}
	if got := st.Countries("speedchecker"); !reflect.DeepEqual(got, want) {
		t.Errorf("Countries = %v, want %v", got, want)
	}
}

func TestMergeSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		var vecs [][]float64
		var all []float64
		for i := 0; i < k; i++ {
			n := rng.Intn(20)
			xs := make([]float64, n)
			for j := range xs {
				xs[j] = rng.Float64() * 100
			}
			sort.Float64s(xs)
			vecs = append(vecs, xs)
			all = append(all, xs...)
		}
		sort.Float64s(all)
		got := mergeSorted(vecs)
		if len(all) == 0 {
			if len(got) != 0 {
				t.Fatalf("trial %d: merged %d values from empty input", trial, len(got))
			}
			continue
		}
		if !reflect.DeepEqual(got, all) {
			t.Fatalf("trial %d: merge mismatch", trial)
		}
	}
}

// The sealed store must serve concurrent readers without coordination.
func TestConcurrentQueries(t *testing.T) {
	st, _, _ := fixtureStore(t, 4)
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			st.LatencyMap(10)
			st.ContinentCDFs("atlas")
			st.PlatformDiff()
			st.PeeringShares()
			st.CountryQuantiles("speedchecker", "DE", 0.5)
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
