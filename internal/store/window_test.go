package store

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/analysis"
	"repro/internal/measure"
	"repro/internal/netsim"
	"repro/internal/pipeline"
	"repro/internal/probes"
	"repro/internal/world"
)

// windowedByCountry computes the ground-truth windowed per-country
// vectors straight from the nearest assignment's index-aligned cycle
// columns: the nearest-region choice is a whole-stream property, so the
// windowed store must return exactly the full assignment's samples
// filtered by cycle, never a re-derived assignment over the window.
func windowedByCountry(na analysis.NearestAssignment, w Window) map[string][]float64 {
	out := map[string][]float64{}
	for probe, xs := range na.Samples {
		country := na.Meta[probe].Country
		cycles := na.Cycles[probe]
		for i, x := range xs {
			if w.Contains(int(cycles[i])) {
				out[country] = append(out[country], x)
			}
		}
	}
	for _, xs := range out {
		sort.Float64s(xs)
	}
	return out
}

// dropEmpty normalizes a query result for comparison: a group whose
// samples all fall outside the window may come back as an empty slice
// or not at all, and both mean the same thing.
func dropEmpty(m map[string][]float64) map[string][]float64 {
	out := make(map[string][]float64, len(m))
	for k, xs := range m {
		if len(xs) > 0 {
			out[k] = append([]float64(nil), xs...)
		}
	}
	return out
}

// TestWindowedQueriesMatchGroundTruth is the longitudinal refactor's
// equivalence proof at the store layer: at partition counts 1/4/16,
// (a) unwindowed queries and explicit full-window queries are
// bit-identical to the pre-refactor single-partition layout, and
// (b) every sub-window query equals filtering the full nearest
// assignment by cycle — whether the window aligns with partition
// boundaries (the zone-map fast path) or cuts through them (the
// row-filter path).
func TestWindowedQueriesMatchGroundTruth(t *testing.T) {
	ds, processed := fixtureDataset(t)
	const cycles = 15 // fixture pings cover cycles 0..14
	baseline := FromDataset(ds, processed, Options{Shards: 4})
	full := Window{From: 0, To: cycles}
	subWindows := []Window{
		{From: 5},          // open above
		{To: 7},            // open below
		{From: 3, To: 11},  // interior, cuts through partitions
		{From: 7, To: 8},   // single cycle
		{From: 20, To: 25}, // past the campaign end: empty
	}

	for _, parts := range []int{1, 4, 16} {
		st := FromDataset(ds, processed, Options{Shards: 4, Partitions: parts, Cycles: cycles})

		// Unwindowed queries must not notice the partitioning.
		if got, want := st.LatencyMap(10), baseline.LatencyMap(10); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: LatencyMap diverges from single-partition layout", parts)
		}
		if got, want := st.PlatformDiff(), baseline.PlatformDiff(); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: PlatformDiff diverges from single-partition layout", parts)
		}
		if got, want := st.PeeringShares(), baseline.PeeringShares(); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: PeeringShares diverges from single-partition layout", parts)
		}

		// A window explicitly spanning the whole campaign must answer
		// identically to no window at all.
		if got, want := dropEmpty(st.CountrySamplesWindow("speedchecker", full)), dropEmpty(baseline.CountrySamples("speedchecker")); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: full-window CountrySamples diverges from unwindowed", parts)
		}
		if got, want := st.LatencyMapWindow(10, full), baseline.LatencyMap(10); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: full-window LatencyMap diverges from unwindowed", parts)
		}
		if got, want := st.PlatformDiffWindow(full), baseline.PlatformDiff(); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: full-window PlatformDiff diverges from unwindowed", parts)
		}
		if got, want := st.PeeringSharesWindow(full), baseline.PeeringShares(); !reflect.DeepEqual(got, want) {
			t.Errorf("partitions=%d: full-window PeeringShares diverges from unwindowed", parts)
		}

		for _, platform := range []string{"speedchecker", "atlas"} {
			na := analysis.Nearest(ds, platform)
			for _, w := range append([]Window{{}, full}, subWindows...) {
				got := dropEmpty(st.CountrySamplesWindow(platform, w))
				want := windowedByCountry(na, w)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("partitions=%d: CountrySamplesWindow(%s, %+v) diverges from cycle-filtered assignment", parts, platform, w)
				}
			}
		}

		// Quantiles over a sub-window must come from the windowed merge.
		w := Window{From: 3, To: 11}
		want := windowedByCountry(analysis.Nearest(ds, "speedchecker"), w)
		for country, xs := range want {
			got, n, err := st.CountryQuantilesWindow("speedchecker", country, w, 0.25, 0.5, 0.9)
			if err != nil {
				t.Fatalf("partitions=%d: CountryQuantilesWindow(%s): %v", parts, country, err)
			}
			if n != len(xs) {
				t.Errorf("partitions=%d: CountryQuantilesWindow(%s) n = %d, want %d", parts, country, n, len(xs))
			}
			_ = got
		}
	}
}

// TestChangepointDetectsCableCut runs a real campaign under the seeded
// cable-cut scenario — the Fig. 6a African countries lose their
// international paths at the campaign midpoint, +45 ms towards every
// foreign region — and proves the changepoint detector finds it: the
// affected country×provider pairs rank first with a shift score near 1
// and a delta around the injected penalty, no well-sampled unaffected
// pair looks like a regression, and a control split placed entirely
// before the cut detects nothing.
func TestChangepointDetectsCableCut(t *testing.T) {
	const cycles = 4
	scn, err := netsim.ScenarioProfile(netsim.ScenarioCableCut, cycles, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := world.MustBuild(world.Config{Seed: 1})
	sim := netsim.New(w)
	sim.Events = scn.Events
	sc := probes.GenerateSpeedchecker(w, probes.Config{Seed: 1, Scale: 0.05})
	feed := NewFeed(pipeline.NewProcessor(w), Options{Shards: 4, Partitions: cycles, Cycles: cycles})
	cfg := measure.Config{
		Seed: 1, Cycles: cycles, ProbesPerCountry: 16, TargetsPerProbe: 4,
		MinProbesPerCountry: 1, RequestsPerMinute: 1000, Workers: 4,
		BothPingProtocols: measure.FlagOn,
		RegionAvailable:   scn.RegionAvailable,
		Sink:              feed,
	}
	campaign, err := measure.New(sim, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, st, err := campaign.Run(context.Background()); err != nil {
		t.Fatal(err)
	} else if st.SinkDegraded || st.Spilled > 0 {
		t.Fatalf("campaign degraded its sink: %+v", st)
	}
	st := feed.Seal()

	affected := map[string]bool{ // the Fig. 6a country list the scenario cuts
		"DZ": true, "EG": true, "ET": true, "KE": true,
		"MA": true, "SN": true, "TN": true, "ZA": true,
	}
	const minN = 6 // per-side sample floor before a pair's score is trusted

	at := cycles / 2 // the scenario fires at the campaign midpoint
	entries := st.Changepoint("speedchecker", at, 0)
	if len(entries) == 0 {
		t.Fatal("changepoint scan returned no pairs")
	}

	var hits int
	var firstScored *ChangepointEntry
	for i := range entries {
		e := entries[i]
		if e.Status != "" || e.NBefore < minN || e.NAfter < minN {
			continue
		}
		if firstScored == nil {
			firstScored = &entries[i]
		}
		if e.Shift >= 0.9 {
			if !affected[e.Country] {
				t.Errorf("unaffected pair %s×%s scored as a regression: shift %.3f, delta %.1f ms (n=%d/%d)",
					e.Country, e.Provider, e.Shift, e.DeltaMs, e.NBefore, e.NAfter)
			}
			hits++
		}
	}
	if hits == 0 {
		t.Fatalf("no affected pair detected; entries: %+v", entries[:min(len(entries), 8)])
	}
	if firstScored == nil {
		t.Fatal("no well-sampled scored pair in the ranking")
	}
	if !affected[firstScored.Country] || firstScored.Shift < 0.95 || firstScored.DeltaMs < 30 {
		t.Errorf("top-ranked pair is not the cable cut: %+v", *firstScored)
	}

	// Control: a split placed entirely before the cut compares two
	// pre-event cycles and must find nothing.
	for _, e := range st.Changepoint("speedchecker", at-1, 1) {
		if e.Status != "" || e.NBefore < minN || e.NAfter < minN {
			continue
		}
		if e.Shift >= 0.9 || e.Shift <= 0.1 {
			t.Errorf("pre-cut control window flags %s×%s: shift %.3f, delta %.1f ms (n=%d/%d)",
				e.Country, e.Provider, e.Shift, e.DeltaMs, e.NBefore, e.NAfter)
		}
	}
}
