// Package tcping measures round-trip latency to a live TCP endpoint by
// timing connection handshakes — the "TCP ping" of §3.3. Unlike ICMP
// echo it needs no raw sockets, measures true end-to-end reachability
// of the service port, and is what the Speedchecker platform runs under
// the hood.
//
// The package works against real hosts; the rest of the repository uses
// the simulator because this workspace has no Internet access, but
// cmd/cloudping exposes this pinger directly.
package tcping

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"repro/internal/stats"
)

// Result is one probe attempt.
type Result struct {
	Seq int
	RTT time.Duration
	Err error // nil on success
}

// OK reports whether the probe succeeded.
func (r Result) OK() bool { return r.Err == nil }

// Summary aggregates a run.
type Summary struct {
	Sent      int
	Succeeded int
	LossPct   float64
	Min       time.Duration
	Max       time.Duration
	Mean      time.Duration
	Median    time.Duration
	StdDev    time.Duration
}

// Pinger times TCP handshakes against one address. The zero value is
// not usable; set Address and call Run.
type Pinger struct {
	// Address is the host:port target.
	Address string
	// Count is the number of probes (default 4).
	Count int
	// Interval separates probe starts (default 1s; tests use less).
	Interval time.Duration
	// Timeout bounds each handshake (default 3s).
	Timeout time.Duration
	// Dialer optionally customizes dialing (source address, etc.).
	Dialer *net.Dialer
}

func (p *Pinger) withDefaults() Pinger {
	q := *p
	if q.Count == 0 {
		q.Count = 4
	}
	if q.Interval == 0 {
		q.Interval = time.Second
	}
	if q.Timeout == 0 {
		q.Timeout = 3 * time.Second
	}
	if q.Dialer == nil {
		q.Dialer = &net.Dialer{}
	}
	return q
}

// ErrNoAddress is returned when the pinger has no target.
var ErrNoAddress = errors.New("tcping: no address")

// Run sends the configured probes, respecting ctx. It returns every
// per-probe result plus the aggregate summary. A run where all probes
// fail is not an error; inspect Summary.LossPct.
func (p *Pinger) Run(ctx context.Context) ([]Result, Summary, error) {
	cfg := p.withDefaults()
	if cfg.Address == "" {
		return nil, Summary{}, ErrNoAddress
	}
	if _, _, err := net.SplitHostPort(cfg.Address); err != nil {
		return nil, Summary{}, fmt.Errorf("tcping: bad address %q: %w", cfg.Address, err)
	}
	results := make([]Result, 0, cfg.Count)
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for seq := 0; seq < cfg.Count; seq++ {
		if seq > 0 {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				return results, summarize(results), ctx.Err()
			}
		}
		results = append(results, cfg.probe(ctx, seq))
		if err := ctx.Err(); err != nil {
			return results, summarize(results), err
		}
	}
	return results, summarize(results), nil
}

func (p *Pinger) probe(ctx context.Context, seq int) Result {
	dialCtx, cancel := context.WithTimeout(ctx, p.Timeout)
	defer cancel()
	start := time.Now()
	conn, err := p.Dialer.DialContext(dialCtx, "tcp", p.Address)
	rtt := time.Since(start)
	if err != nil {
		return Result{Seq: seq, Err: err}
	}
	// The handshake completed at connect time; close politely.
	conn.Close()
	return Result{Seq: seq, RTT: rtt}
}

func summarize(results []Result) Summary {
	s := Summary{Sent: len(results)}
	var ms []float64
	for _, r := range results {
		if r.OK() {
			s.Succeeded++
			ms = append(ms, float64(r.RTT))
		}
	}
	if s.Sent > 0 {
		s.LossPct = 100 * float64(s.Sent-s.Succeeded) / float64(s.Sent)
	}
	if len(ms) == 0 {
		return s
	}
	box, err := stats.Summarize(ms)
	if err != nil {
		return s
	}
	sd, _ := stats.StdDev(ms)
	s.Min = time.Duration(box.Min)
	s.Max = time.Duration(box.Max)
	s.Mean = time.Duration(box.Mean)
	s.Median = time.Duration(box.Median)
	s.StdDev = time.Duration(sd)
	return s
}
