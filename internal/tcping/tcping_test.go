package tcping

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// startListener returns a loopback TCP listener that accepts and
// immediately closes connections.
func startListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

func TestPingLoopback(t *testing.T) {
	ln := startListener(t)
	p := Pinger{Address: ln.Addr().String(), Count: 5, Interval: 5 * time.Millisecond}
	results, sum, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 || sum.Sent != 5 || sum.Succeeded != 5 {
		t.Fatalf("results: %+v summary: %+v", results, sum)
	}
	if sum.LossPct != 0 {
		t.Errorf("loss = %v", sum.LossPct)
	}
	for _, r := range results {
		if !r.OK() || r.RTT <= 0 {
			t.Errorf("probe %d: %+v", r.Seq, r)
		}
	}
	if sum.Min <= 0 || sum.Min > sum.Median || sum.Median > sum.Max {
		t.Errorf("summary ordering broken: %+v", sum)
	}
	if sum.Mean <= 0 {
		t.Errorf("mean = %v", sum.Mean)
	}
}

func TestPingRefusedPort(t *testing.T) {
	// Bind a port, then close it so nothing listens there.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	p := Pinger{Address: addr, Count: 3, Interval: time.Millisecond, Timeout: 200 * time.Millisecond}
	results, sum, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("refused connections are loss, not a run error: %v", err)
	}
	if sum.Succeeded != 0 || sum.LossPct != 100 {
		t.Errorf("summary = %+v", sum)
	}
	for _, r := range results {
		if r.OK() {
			t.Error("probe against closed port succeeded")
		}
	}
	if sum.Min != 0 || sum.Median != 0 {
		t.Errorf("all-loss summary should have zero latencies: %+v", sum)
	}
}

func TestPingCancellation(t *testing.T) {
	ln := startListener(t)
	ctx, cancel := context.WithCancel(context.Background())
	p := Pinger{Address: ln.Addr().String(), Count: 1000, Interval: 20 * time.Millisecond}
	done := make(chan struct{})
	var results []Result
	var runErr error
	go func() {
		defer close(done)
		results, _, runErr = p.Run(ctx)
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("run did not stop after cancellation")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", runErr)
	}
	if len(results) == 0 || len(results) >= 1000 {
		t.Errorf("partial results = %d", len(results))
	}
}

func TestBadConfig(t *testing.T) {
	p := Pinger{}
	if _, _, err := p.Run(context.Background()); !errors.Is(err, ErrNoAddress) {
		t.Errorf("err = %v, want ErrNoAddress", err)
	}
	p = Pinger{Address: "no-port-here"}
	if _, _, err := p.Run(context.Background()); err == nil {
		t.Error("address without port should fail")
	}
}

func TestDefaults(t *testing.T) {
	p := (&Pinger{Address: "x:1"}).withDefaults()
	if p.Count != 4 || p.Interval != time.Second || p.Timeout != 3*time.Second || p.Dialer == nil {
		t.Errorf("defaults: %+v", p)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := summarize(nil)
	if s.Sent != 0 || s.LossPct != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}
