package wirecodec

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/dataset"
	"repro/internal/sample"
)

// benchFixture is a realistic mixed stream: many pings, some traces,
// heavy string repetition (the dictionary's best case and the text
// codecs' worst).
func benchFixture() ([]sample.Sample, []sample.TraceSample) {
	return genRecordsB(97, 8192, 1024)
}

func genRecordsB(seed int64, nPings, nTraces int) ([]sample.Sample, []sample.TraceSample) {
	// Reuse the test generator through a tiny shim so benchmarks work
	// without a *testing.T.
	return genRecords(seed, nPings, nTraces)
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	pings, traces := benchFixture()
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, Options{})
		for _, p := range pings {
			if err := w.Ping(p); err != nil {
				b.Fatal(err)
			}
		}
		for _, tr := range traces {
			if err := w.Trace(tr); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			b.Fatal(err)
		}
		bytesOut = int64(buf.Len())
		nP, nT, err := NewReader(bytes.NewReader(buf.Bytes()), Options{}).Scan(
			func(sample.Sample) error { return nil },
			func(sample.TraceSample) error { return nil })
		if err != nil || nP != uint64(len(pings)) || nT != uint64(len(traces)) {
			b.Fatalf("decode: pings=%d traces=%d err=%v", nP, nT, err)
		}
	}
	b.SetBytes(bytesOut)
	b.ReportMetric(float64(bytesOut)/float64(len(pings)+len(traces)), "wire-bytes/record")
}

func BenchmarkNDJSONEncodeDecode(b *testing.B) {
	pings, traces := benchFixture()
	var bytesOut int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var csvBuf, jsonlBuf bytes.Buffer
		fs := dataset.NewFileSink(&csvBuf, &jsonlBuf)
		for _, p := range pings {
			if err := fs.Ping(p); err != nil {
				b.Fatal(err)
			}
		}
		for _, tr := range traces {
			if err := fs.Trace(tr); err != nil {
				b.Fatal(err)
			}
		}
		if err := fs.Close(); err != nil {
			b.Fatal(err)
		}
		bytesOut = int64(csvBuf.Len() + jsonlBuf.Len())
		nP := 0
		if err := dataset.ScanPings(bytes.NewReader(csvBuf.Bytes()), func(dataset.PingRecord) error {
			nP++
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		nT := 0
		if err := dataset.ScanTraces(bytes.NewReader(jsonlBuf.Bytes()), func(dataset.TracerouteRecord) error {
			nT++
			return nil
		}); err != nil && err != io.EOF {
			b.Fatal(err)
		}
		if nP != len(pings) || nT != len(traces) {
			b.Fatalf("decode: pings=%d traces=%d", nP, nT)
		}
	}
	b.SetBytes(bytesOut)
	b.ReportMetric(float64(bytesOut)/float64(len(pings)+len(traces)), "text-bytes/record")
}
