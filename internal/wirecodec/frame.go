// Package wirecodec is the binary sample wire protocol of the
// distributed campaign plane (internal/cluster): a length-prefixed,
// CRC-framed, versioned stream of Sample/TraceSample batches and
// opaque control payloads, replacing the NDJSON/CSV text codecs on the
// worker→coordinator path.
//
// Layout. A stream opens with a 5-byte preamble — magic "CWRE" plus a
// version byte — then carries frames:
//
//	frame    := uvarint(len(payload)) payload crc32c(payload)
//	payload  := type-byte body
//
// Frame types: control (opaque body, JSON in cluster's usage), ping
// batch, trace batch, and EOF (carrying the stream's record totals, so
// a truncated stream is detectable). Record bodies use a per-stream
// string dictionary (every probe ID, country or region string is sent
// once and referenced by varint afterwards), zigzag-varint deltas for
// cycles and hop TTLs, varints for ASN/IP, and exact 8-byte IEEE-754
// bits for every RTT — the codec round-trips every field bit-exactly,
// which the cluster's replay-on-reassign determinism depends on.
//
// The codec state (dictionary, delta baselines) persists across frames
// within one stream: frames must be decoded in the order they were
// encoded, which is exactly what one worker connection provides.
//
// The package never reads the clock and draws no randomness; it is
// deterministic-scope under internal/lint like the rest of the spine.
package wirecodec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"repro/internal/obs"
)

// Version is the stream format version this package speaks. A preamble
// carrying any other version is refused (ErrVersion) — skew between a
// coordinator and a worker binary must fail loudly, not misparse.
const Version = 1

// Frame types. The type byte is the first byte of every payload.
const (
	// FrameControl carries an opaque control-plane payload (the cluster
	// protocol uses JSON messages).
	FrameControl byte = 0x01
	// FramePings carries a batch of Sample records.
	FramePings byte = 0x02
	// FrameTraces carries a batch of TraceSample records.
	FrameTraces byte = 0x03
	// FrameEOF ends a record stream, carrying the total ping and trace
	// counts written, so readers can detect truncation.
	FrameEOF byte = 0x04
)

var magic = [4]byte{'C', 'W', 'R', 'E'}

// Decode-side hard limits: a corrupt or hostile length field must not
// translate into an unbounded allocation.
const (
	// MaxFrame bounds one frame's payload (16 MiB).
	MaxFrame = 16 << 20
	// maxString bounds one dictionary string.
	maxString = 1 << 16
	// maxHops bounds one traceroute's hop list.
	maxHops = 4096
)

// Errors the decode path reports. All of them wrap enough context to
// tell a truncated stream from a corrupt one from a version skew.
var (
	ErrMagic    = errors.New("wirecodec: bad stream magic")
	ErrVersion  = errors.New("wirecodec: unsupported stream version")
	ErrCRC      = errors.New("wirecodec: frame crc mismatch")
	ErrTooLarge = errors.New("wirecodec: frame exceeds size limit")
	// ErrTruncated marks a stream that ended without its EOF frame (or
	// mid-frame): the producer died before finishing.
	ErrTruncated = errors.New("wirecodec: truncated stream")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Options attaches stream telemetry. Both fields are optional; nil
// runs uncounted.
type Options struct {
	// Frames counts frames as they pass (written or read).
	Frames *obs.Counter
	// Bytes counts wire bytes including framing overhead.
	Bytes *obs.Counter
}

func (o Options) withDefaults() Options {
	var unregistered *obs.Registry // nil registry hands out working instruments
	if o.Frames == nil {
		o.Frames = unregistered.Counter("wire_frames_total")
	}
	if o.Bytes == nil {
		o.Bytes = unregistered.Counter("wire_bytes_total")
	}
	return o
}

// FrameWriter writes the preamble and frames to an underlying writer.
// WriteFrame is safe for concurrent use — on a worker connection the
// heartbeat goroutine and the sample sink share one writer — and each
// frame lands contiguously.
type FrameWriter struct {
	mu       sync.Mutex
	bw       *bufio.Writer
	preamble bool
	opts     Options
	scratch  [binary.MaxVarintLen64]byte
}

// NewFrameWriter wraps w. Frames are buffered; call Flush to push them
// to the wire (WriteFrame flushes internally only when the buffer
// fills, so a control message should be followed by a Flush).
func NewFrameWriter(w io.Writer, opts Options) *FrameWriter {
	return &FrameWriter{bw: bufio.NewWriterSize(w, 64<<10), opts: opts.withDefaults()}
}

// WriteFrame frames and writes one payload (type byte included). The
// payload may be reused by the caller once WriteFrame returns.
func (fw *FrameWriter) WriteFrame(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("wirecodec: empty frame payload")
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	if !fw.preamble {
		if _, err := fw.bw.Write(append(magic[:], Version)); err != nil {
			return err
		}
		fw.preamble = true
	}
	n := binary.PutUvarint(fw.scratch[:], uint64(len(payload)))
	if _, err := fw.bw.Write(fw.scratch[:n]); err != nil {
		return err
	}
	if _, err := fw.bw.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, castagnoli))
	if _, err := fw.bw.Write(crc[:]); err != nil {
		return err
	}
	fw.opts.Frames.Inc()
	fw.opts.Bytes.Add(uint64(n + len(payload) + 4))
	return nil
}

// Flush pushes buffered frames to the underlying writer.
func (fw *FrameWriter) Flush() error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return fw.bw.Flush()
}

// FrameReader reads the preamble and frames. Not safe for concurrent
// use (one connection has one reading goroutine). The payload slice
// returned by ReadFrame is reused by the next call.
type FrameReader struct {
	br       *bufio.Reader
	preamble bool
	buf      []byte
	opts     Options
}

// NewFrameReader wraps r.
func NewFrameReader(r io.Reader, opts Options) *FrameReader {
	return &FrameReader{br: bufio.NewReaderSize(r, 64<<10), opts: opts.withDefaults()}
}

// ReadFrame returns the next frame's payload (type byte included). At
// a clean frame boundary with no further bytes it returns io.EOF; a
// stream that stops mid-frame returns ErrTruncated. The returned slice
// is only valid until the next ReadFrame.
func (fr *FrameReader) ReadFrame() ([]byte, error) {
	if !fr.preamble {
		var pre [5]byte
		if _, err := io.ReadFull(fr.br, pre[:]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return nil, fmt.Errorf("%w: stream ended inside the preamble", ErrTruncated)
			}
			return nil, err
		}
		if [4]byte(pre[:4]) != magic {
			return nil, fmt.Errorf("%w: % x", ErrMagic, pre[:4])
		}
		if pre[4] != Version {
			return nil, fmt.Errorf("%w: stream speaks v%d, this decoder v%d", ErrVersion, pre[4], Version)
		}
		fr.preamble = true
	}
	size, err := binary.ReadUvarint(fr.br)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF // clean boundary
		}
		return nil, fmt.Errorf("%w: stream ended inside a frame length", ErrTruncated)
	}
	if size == 0 {
		return nil, fmt.Errorf("wirecodec: zero-length frame")
	}
	if size > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, size)
	}
	if uint64(cap(fr.buf)) < size {
		fr.buf = make([]byte, size)
	}
	fr.buf = fr.buf[:size]
	if _, err := io.ReadFull(fr.br, fr.buf); err != nil {
		return nil, fmt.Errorf("%w: stream ended inside a %d-byte frame", ErrTruncated, size)
	}
	var crc [4]byte
	if _, err := io.ReadFull(fr.br, crc[:]); err != nil {
		return nil, fmt.Errorf("%w: stream ended inside a frame checksum", ErrTruncated)
	}
	if got, want := crc32.Checksum(fr.buf, castagnoli), binary.LittleEndian.Uint32(crc[:]); got != want {
		return nil, fmt.Errorf("%w: computed %08x, frame carries %08x", ErrCRC, got, want)
	}
	fr.opts.Frames.Inc()
	fr.opts.Bytes.Add(uint64(len(fr.buf)) + 4 + uint64(uvarintLen(size)))
	return fr.buf, nil
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
