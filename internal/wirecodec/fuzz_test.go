package wirecodec

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/sample"
)

// FuzzWireDecode drives the frame decoder with arbitrary bytes —
// truncated frames, flipped CRCs, version skew, hostile length and
// count fields — and holds two invariants: the decoder never panics
// and never over-allocates past its documented limits, and any stream
// it accepts re-encodes to a stream that decodes to the same records
// (accepted inputs are semantically valid).
func FuzzWireDecode(f *testing.F) {
	// Seed corpus: a healthy finished stream plus its classic
	// corruptions, so the fuzzer starts at the format's edges instead
	// of random noise.
	pings, traces := genRecords(41, 40, 12)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	for _, p := range pings {
		if err := w.Ping(p); err != nil {
			f.Fatal(err)
		}
	}
	for _, tr := range traces {
		if err := w.Trace(tr); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])           // truncated mid-stream
	f.Add(valid[:4])                      // truncated preamble
	skew := append([]byte(nil), valid...) // version skew
	skew[4] = Version + 3
	f.Add(skew)
	crc := append([]byte(nil), valid...) // payload corruption
	crc[len(crc)/2] ^= 0xff
	f.Add(crc)
	f.Add([]byte{'C', 'W', 'R', 'E', Version, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01}) // hostile length
	f.Add(EncodeEOF(1, 1))

	f.Fuzz(func(t *testing.T, data []byte) {
		var gotP []sample.Sample
		var gotT []sample.TraceSample
		p1, t1, err := NewReader(bytes.NewReader(data), Options{}).Scan(
			func(s sample.Sample) error { gotP = append(gotP, s); return nil },
			func(tr sample.TraceSample) error { gotT = append(gotT, tr); return nil },
		)
		if err != nil {
			return // rejected input: the only requirement is not panicking
		}
		if p1 != uint64(len(gotP)) || t1 != uint64(len(gotT)) {
			t.Fatalf("totals (%d, %d) disagree with callbacks (%d, %d)", p1, t1, len(gotP), len(gotT))
		}
		// Accepted input: re-encode and decode again; the records must
		// survive unchanged (the codec has one semantics, not two).
		var re bytes.Buffer
		rw := NewWriter(&re, Options{})
		rng := rand.New(rand.NewSource(1))
		pi, ti := 0, 0
		// Interleave in a deterministic shuffle so re-encode exercises
		// mixed batches too.
		for pi < len(gotP) || ti < len(gotT) {
			if ti >= len(gotT) || (pi < len(gotP) && rng.Intn(2) == 0) {
				if err := rw.Ping(gotP[pi]); err != nil {
					t.Fatal(err)
				}
				pi++
			} else {
				if err := rw.Trace(gotT[ti]); err != nil {
					t.Fatal(err)
				}
				ti++
			}
		}
		if err := rw.Finish(); err != nil {
			t.Fatal(err)
		}
		var reP []sample.Sample
		var reT []sample.TraceSample
		if _, _, err := NewReader(bytes.NewReader(re.Bytes()), Options{}).Scan(
			func(s sample.Sample) error { reP = append(reP, s); return nil },
			func(tr sample.TraceSample) error { reT = append(reT, tr); return nil },
		); err != nil {
			t.Fatalf("re-encoded stream rejected: %v", err)
		}
		if len(reP) != len(gotP) || len(reT) != len(gotT) {
			t.Fatal("re-encoded stream has different record counts")
		}
		for i := range gotP {
			if !eqPing(reP[i], gotP[i]) {
				t.Fatalf("ping %d decodes differently after re-encode", i)
			}
		}
		for i := range gotT {
			if !eqTrace(reT[i], gotT[i]) {
				t.Fatalf("trace %d decodes differently after re-encode", i)
			}
		}
	})
}

// eqPing compares records with bit-level float equality: a fuzzed
// stream may legitimately carry NaN RTTs, which == (and DeepEqual)
// would treat as unequal to themselves.
func eqPing(a, b sample.Sample) bool {
	ra, rb := a.RTTms, b.RTTms
	a.RTTms, b.RTTms = 0, 0
	return a == b && math.Float64bits(ra) == math.Float64bits(rb)
}

func eqTrace(a, b sample.TraceSample) bool {
	if a.VP != b.VP || a.Target != b.Target || a.Cycle != b.Cycle || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		ha, hb := a.Hops[i], b.Hops[i]
		ra, rb := ha.RTTms, hb.RTTms
		ha.RTTms, hb.RTTms = 0, 0
		if ha != hb || math.Float64bits(ra) != math.Float64bits(rb) {
			return false
		}
	}
	return true
}
