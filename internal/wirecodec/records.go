package wirecodec

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/asn"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

// Encoder holds the per-stream compression state: the string
// dictionary and the cycle delta baselines. One Encoder serves one
// stream; its frames must be decoded in order by one Decoder.
type Encoder struct {
	dict           map[string]uint64
	lastPingCycle  int64
	lastTraceCycle int64
}

// NewEncoder returns a fresh per-stream encoder.
func NewEncoder() *Encoder {
	return &Encoder{dict: make(map[string]uint64, 256)}
}

// Zigzag maps a signed delta onto the unsigned varint space (small
// magnitudes of either sign stay short). It is shared with the on-disk
// segment format (internal/segment), which delta-codes its cycle
// columns with the same primitive so both binary formats agree on what
// a signed varint means.
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func zigzag(v int64) uint64   { return Zigzag(v) }
func unzigzag(u uint64) int64 { return Unzigzag(u) }

// appendString emits a dictionary reference: known strings cost one
// varint; a first sighting is sent inline and assigned the next id.
func (e *Encoder) appendString(dst []byte, s string) []byte {
	if id, ok := e.dict[s]; ok {
		return binary.AppendUvarint(dst, id)
	}
	e.dict[s] = uint64(len(e.dict)) + 1
	dst = binary.AppendUvarint(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func (e *Encoder) appendVP(dst []byte, vp *sample.VantagePoint) []byte {
	dst = e.appendString(dst, vp.ProbeID)
	dst = e.appendString(dst, vp.Platform)
	dst = e.appendString(dst, vp.Country)
	dst = append(dst, byte(vp.Continent))
	dst = binary.AppendUvarint(dst, uint64(vp.ISP))
	return append(dst, byte(vp.Access))
}

func (e *Encoder) appendTarget(dst []byte, t *sample.Target) []byte {
	dst = e.appendString(dst, t.Region)
	dst = e.appendString(dst, t.Provider)
	dst = e.appendString(dst, t.Country)
	dst = append(dst, byte(t.Continent))
	return binary.AppendUvarint(dst, uint64(t.IP))
}

// AppendPing encodes one Sample onto dst.
func (e *Encoder) AppendPing(dst []byte, s sample.Sample) []byte {
	dst = e.appendVP(dst, &s.VP)
	dst = e.appendTarget(dst, &s.Target)
	dst = append(dst, byte(s.Protocol))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.RTTms))
	dst = binary.AppendUvarint(dst, zigzag(int64(s.Cycle)-e.lastPingCycle))
	e.lastPingCycle = int64(s.Cycle)
	return dst
}

// AppendTrace encodes one TraceSample onto dst. Hop TTLs are
// delta-encoded against the previous hop (usually +1, one byte); RTTs
// keep their exact float bits.
func (e *Encoder) AppendTrace(dst []byte, t sample.TraceSample) []byte {
	dst = e.appendVP(dst, &t.VP)
	dst = e.appendTarget(dst, &t.Target)
	dst = binary.AppendUvarint(dst, zigzag(int64(t.Cycle)-e.lastTraceCycle))
	e.lastTraceCycle = int64(t.Cycle)
	dst = binary.AppendUvarint(dst, uint64(len(t.Hops)))
	prevTTL := int64(0)
	for _, h := range t.Hops {
		dst = binary.AppendUvarint(dst, zigzag(int64(h.TTL)-prevTTL))
		prevTTL = int64(h.TTL)
		dst = binary.AppendUvarint(dst, uint64(h.IP))
		flag := byte(0)
		if h.Responded {
			flag = 1
		}
		dst = append(dst, flag)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(h.RTTms))
	}
	return dst
}

// EncodePingBatch frames count-prefixed pings into a FramePings
// payload (type byte included), appended to dst.
func (e *Encoder) EncodePingBatch(dst []byte, batch []sample.Sample) []byte {
	dst = append(dst, FramePings)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		dst = e.AppendPing(dst, batch[i])
	}
	return dst
}

// EncodeTraceBatch frames count-prefixed traces into a FrameTraces
// payload (type byte included), appended to dst.
func (e *Encoder) EncodeTraceBatch(dst []byte, batch []sample.TraceSample) []byte {
	dst = append(dst, FrameTraces)
	dst = binary.AppendUvarint(dst, uint64(len(batch)))
	for i := range batch {
		dst = e.AppendTrace(dst, batch[i])
	}
	return dst
}

// EncodeEOF builds the FrameEOF payload carrying stream totals.
func EncodeEOF(pings, traces uint64) []byte {
	dst := []byte{FrameEOF}
	dst = binary.AppendUvarint(dst, pings)
	return binary.AppendUvarint(dst, traces)
}

// Decoder mirrors Encoder: it rebuilds the dictionary and delta
// baselines as batches arrive, in stream order.
type Decoder struct {
	dict           []string
	lastPingCycle  int64
	lastTraceCycle int64
}

// NewDecoder returns a fresh per-stream decoder.
func NewDecoder() *Decoder { return &Decoder{dict: make([]string, 0, 256)} }

var errShort = fmt.Errorf("wirecodec: record body ends mid-field")

func (d *Decoder) readUvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, errShort
	}
	return v, b[n:], nil
}

func (d *Decoder) readString(b []byte) (string, []byte, error) {
	id, b, err := d.readUvarint(b)
	if err != nil {
		return "", nil, err
	}
	if id == 0 {
		l, b, err := d.readUvarint(b)
		if err != nil {
			return "", nil, err
		}
		if l > maxString {
			return "", nil, fmt.Errorf("wirecodec: dictionary string of %d bytes exceeds limit", l)
		}
		if uint64(len(b)) < l {
			return "", nil, errShort
		}
		s := string(b[:l])
		d.dict = append(d.dict, s)
		return s, b[l:], nil
	}
	if id > uint64(len(d.dict)) {
		return "", nil, fmt.Errorf("wirecodec: string ref %d beyond dictionary of %d", id, len(d.dict))
	}
	return d.dict[id-1], b, nil
}

func (d *Decoder) readVP(b []byte) (sample.VantagePoint, []byte, error) {
	var vp sample.VantagePoint
	var err error
	if vp.ProbeID, b, err = d.readString(b); err != nil {
		return vp, nil, err
	}
	if vp.Platform, b, err = d.readString(b); err != nil {
		return vp, nil, err
	}
	if vp.Country, b, err = d.readString(b); err != nil {
		return vp, nil, err
	}
	if len(b) < 1 {
		return vp, nil, errShort
	}
	vp.Continent, b = geo.Continent(b[0]), b[1:]
	isp, b, err := d.readUvarint(b)
	if err != nil {
		return vp, nil, err
	}
	if isp > math.MaxUint32 {
		return vp, nil, fmt.Errorf("wirecodec: ASN %d overflows uint32", isp)
	}
	vp.ISP = asn.Number(isp)
	if len(b) < 1 {
		return vp, nil, errShort
	}
	vp.Access, b = lastmile.Access(b[0]), b[1:]
	return vp, b, nil
}

func (d *Decoder) readTarget(b []byte) (sample.Target, []byte, error) {
	var t sample.Target
	var err error
	if t.Region, b, err = d.readString(b); err != nil {
		return t, nil, err
	}
	if t.Provider, b, err = d.readString(b); err != nil {
		return t, nil, err
	}
	if t.Country, b, err = d.readString(b); err != nil {
		return t, nil, err
	}
	if len(b) < 1 {
		return t, nil, errShort
	}
	t.Continent, b = geo.Continent(b[0]), b[1:]
	ip, b, err := d.readUvarint(b)
	if err != nil {
		return t, nil, err
	}
	if ip > math.MaxUint32 {
		return t, nil, fmt.Errorf("wirecodec: IP %d overflows uint32", ip)
	}
	t.IP = netaddr.IP(ip)
	return t, b, nil
}

// DecodePings walks a FramePings payload (type byte included), calling
// fn per record. A fn error aborts the walk and is returned as-is.
func (d *Decoder) DecodePings(payload []byte, fn func(sample.Sample) error) error {
	if len(payload) < 1 || payload[0] != FramePings {
		return fmt.Errorf("wirecodec: not a ping batch")
	}
	count, b, err := d.readUvarint(payload[1:])
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var s sample.Sample
		if s.VP, b, err = d.readVP(b); err != nil {
			return fmt.Errorf("ping %d/%d: %w", i, count, err)
		}
		if s.Target, b, err = d.readTarget(b); err != nil {
			return fmt.Errorf("ping %d/%d: %w", i, count, err)
		}
		if len(b) < 1+8 {
			return fmt.Errorf("ping %d/%d: %w", i, count, errShort)
		}
		s.Protocol, b = sample.Protocol(b[0]), b[1:]
		s.RTTms = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		delta, rest, err := d.readUvarint(b)
		if err != nil {
			return fmt.Errorf("ping %d/%d: %w", i, count, err)
		}
		b = rest
		d.lastPingCycle += unzigzag(delta)
		s.Cycle = int(d.lastPingCycle)
		// VTime is derived, never carried: re-deriving from (cycle,
		// country) reproduces the producer's stamp bit-for-bit.
		s.VTime = sample.VTimeOf(s.Cycle, s.VP.Country)
		if err := fn(s); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("wirecodec: %d trailing bytes after ping batch", len(b))
	}
	return nil
}

// DecodeTraces walks a FrameTraces payload (type byte included),
// calling fn per record.
func (d *Decoder) DecodeTraces(payload []byte, fn func(sample.TraceSample) error) error {
	if len(payload) < 1 || payload[0] != FrameTraces {
		return fmt.Errorf("wirecodec: not a trace batch")
	}
	count, b, err := d.readUvarint(payload[1:])
	if err != nil {
		return err
	}
	for i := uint64(0); i < count; i++ {
		var t sample.TraceSample
		if t.VP, b, err = d.readVP(b); err != nil {
			return fmt.Errorf("trace %d/%d: %w", i, count, err)
		}
		if t.Target, b, err = d.readTarget(b); err != nil {
			return fmt.Errorf("trace %d/%d: %w", i, count, err)
		}
		delta, rest, err := d.readUvarint(b)
		if err != nil {
			return fmt.Errorf("trace %d/%d: %w", i, count, err)
		}
		b = rest
		d.lastTraceCycle += unzigzag(delta)
		t.Cycle = int(d.lastTraceCycle)
		t.VTime = sample.VTimeOf(t.Cycle, t.VP.Country)
		nhops, rest, err := d.readUvarint(b)
		if err != nil {
			return fmt.Errorf("trace %d/%d: %w", i, count, err)
		}
		b = rest
		if nhops > maxHops {
			return fmt.Errorf("wirecodec: trace with %d hops exceeds limit", nhops)
		}
		if nhops > 0 {
			t.Hops = make([]sample.Hop, 0, nhops)
		}
		prevTTL := int64(0)
		for h := uint64(0); h < nhops; h++ {
			var hop sample.Hop
			ttlDelta, rest, err := d.readUvarint(b)
			if err != nil {
				return fmt.Errorf("trace %d/%d hop %d: %w", i, count, h, err)
			}
			b = rest
			prevTTL += unzigzag(ttlDelta)
			hop.TTL = int(prevTTL)
			ip, rest, err := d.readUvarint(b)
			if err != nil {
				return fmt.Errorf("trace %d/%d hop %d: %w", i, count, h, err)
			}
			b = rest
			if ip > math.MaxUint32 {
				return fmt.Errorf("wirecodec: hop IP %d overflows uint32", ip)
			}
			hop.IP = netaddr.IP(ip)
			if len(b) < 1+8 {
				return fmt.Errorf("trace %d/%d hop %d: %w", i, count, h, errShort)
			}
			if b[0] > 1 {
				return fmt.Errorf("wirecodec: hop flag %d is not a bool", b[0])
			}
			hop.Responded = b[0] == 1
			b = b[1:]
			hop.RTTms = math.Float64frombits(binary.LittleEndian.Uint64(b))
			b = b[8:]
			t.Hops = append(t.Hops, hop)
		}
		if err := fn(t); err != nil {
			return err
		}
	}
	if len(b) != 0 {
		return fmt.Errorf("wirecodec: %d trailing bytes after trace batch", len(b))
	}
	return nil
}

// DecodeEOF parses a FrameEOF payload into its stream totals.
func DecodeEOF(payload []byte) (pings, traces uint64, err error) {
	if len(payload) < 1 || payload[0] != FrameEOF {
		return 0, 0, fmt.Errorf("wirecodec: not an EOF frame")
	}
	b := payload[1:]
	p, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, 0, errShort
	}
	t, m := binary.Uvarint(b[n:])
	if m <= 0 {
		return 0, 0, errShort
	}
	if len(b) != n+m {
		return 0, 0, fmt.Errorf("wirecodec: %d trailing bytes after EOF frame", len(b)-n-m)
	}
	return p, t, nil
}
