package wirecodec

import (
	"fmt"
	"io"

	"repro/internal/sample"
)

// FlushRecords is how many records a Writer batches into one frame
// before writing it: big enough to amortize framing and CRC, small
// enough that a coordinator sees a worker's progress (and liveness)
// continuously.
const FlushRecords = 256

// Writer is a sample.Sink that encodes records into batched binary
// frames. Close flushes (the repo-wide sink contract: Close means
// flush, never invalidate, so campaigns may close it repeatedly);
// Finish seals the stream with an EOF frame carrying the totals —
// call it exactly once, after the last record.
//
// A Writer may share its FrameWriter with a control plane (the
// cluster worker interleaves JSON control frames); WriteFrame
// serializes the interleaving.
type Writer struct {
	fw     *FrameWriter
	enc    *Encoder
	pings  []sample.Sample
	traces []sample.TraceSample
	buf    []byte
	nPings uint64
	nTrace uint64
}

// NewWriter builds a Writer over its own FrameWriter on w.
func NewWriter(w io.Writer, opts Options) *Writer {
	return NewStreamWriter(NewFrameWriter(w, opts))
}

// NewStreamWriter builds a Writer over an existing (possibly shared)
// FrameWriter.
func NewStreamWriter(fw *FrameWriter) *Writer {
	return &Writer{fw: fw, enc: NewEncoder()}
}

// Frames returns the underlying FrameWriter, for interleaving control
// frames on the same stream.
func (w *Writer) Frames() *FrameWriter { return w.fw }

// Ping implements sample.Sink.
func (w *Writer) Ping(s sample.Sample) error {
	w.pings = append(w.pings, s)
	w.nPings++
	if len(w.pings) >= FlushRecords {
		return w.flushPings()
	}
	return nil
}

// Trace implements sample.Sink.
func (w *Writer) Trace(t sample.TraceSample) error {
	w.traces = append(w.traces, t)
	w.nTrace++
	if len(w.traces) >= FlushRecords {
		return w.flushTraces()
	}
	return nil
}

func (w *Writer) flushPings() error {
	if len(w.pings) == 0 {
		return nil
	}
	w.buf = w.enc.EncodePingBatch(w.buf[:0], w.pings)
	w.pings = w.pings[:0]
	return w.fw.WriteFrame(w.buf)
}

func (w *Writer) flushTraces() error {
	if len(w.traces) == 0 {
		return nil
	}
	w.buf = w.enc.EncodeTraceBatch(w.buf[:0], w.traces)
	w.traces = w.traces[:0]
	return w.fw.WriteFrame(w.buf)
}

// Close implements sample.Sink: it flushes pending batches and the
// frame buffer without ending the stream, so a later campaign can keep
// writing (RunCampaigns closes the shared sink set once per campaign).
func (w *Writer) Close() error {
	if err := w.flushPings(); err != nil {
		return err
	}
	if err := w.flushTraces(); err != nil {
		return err
	}
	return w.fw.Flush()
}

// Finish flushes everything and writes the EOF frame with the stream
// totals. The Writer must not be used afterwards.
func (w *Writer) Finish() error {
	if err := w.Close(); err != nil {
		return err
	}
	if err := w.fw.WriteFrame(EncodeEOF(w.nPings, w.nTrace)); err != nil {
		return err
	}
	return w.fw.Flush()
}

// Len returns the (pings, traces) written so far — the per-shard
// accounting a cluster worker reports in shard_done.
func (w *Writer) Len() (pings, traces uint64) { return w.nPings, w.nTrace }

// Reader decodes a finished record stream (one written through Writer
// and sealed by Finish).
type Reader struct {
	fr  *FrameReader
	dec *Decoder
}

// NewReader wraps r.
func NewReader(r io.Reader, opts Options) *Reader {
	return &Reader{fr: NewFrameReader(r, opts), dec: NewDecoder()}
}

// Scan walks the stream in order, invoking the callbacks per record
// (either may be nil to skip that record kind), until the EOF frame.
// It returns the stream totals after verifying them against the
// records actually delivered; a stream that ends without its EOF frame
// reports ErrTruncated. Control frames are skipped — a sample-only
// consumer may read a control-bearing stream.
func (r *Reader) Scan(onPing func(sample.Sample) error, onTrace func(sample.TraceSample) error) (pings, traces uint64, err error) {
	var seenPings, seenTraces uint64
	for {
		payload, err := r.fr.ReadFrame()
		if err != nil {
			if err == io.EOF {
				return seenPings, seenTraces, fmt.Errorf("%w: stream ended without an EOF frame", ErrTruncated)
			}
			return seenPings, seenTraces, err
		}
		switch payload[0] {
		case FramePings:
			err = r.dec.DecodePings(payload, func(s sample.Sample) error {
				seenPings++
				if onPing != nil {
					return onPing(s)
				}
				return nil
			})
		case FrameTraces:
			err = r.dec.DecodeTraces(payload, func(t sample.TraceSample) error {
				seenTraces++
				if onTrace != nil {
					return onTrace(t)
				}
				return nil
			})
		case FrameControl:
			// Not ours to interpret.
		case FrameEOF:
			wantPings, wantTraces, err := DecodeEOF(payload)
			if err != nil {
				return seenPings, seenTraces, err
			}
			if wantPings != seenPings || wantTraces != seenTraces {
				return seenPings, seenTraces, fmt.Errorf(
					"%w: EOF frame promises %d pings / %d traces, stream carried %d / %d",
					ErrTruncated, wantPings, wantTraces, seenPings, seenTraces)
			}
			return seenPings, seenTraces, nil
		default:
			err = fmt.Errorf("wirecodec: unknown frame type 0x%02x", payload[0])
		}
		if err != nil {
			return seenPings, seenTraces, err
		}
	}
}
