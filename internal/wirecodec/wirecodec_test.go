package wirecodec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/asn"
	"repro/internal/dataset"
	"repro/internal/geo"
	"repro/internal/lastmile"
	"repro/internal/netaddr"
	"repro/internal/sample"
)

// genPing draws a random but schema-valid Sample: enum fields stay in
// their parseable ranges so the same record survives the NDJSON/CSV
// reference path, while RTTs use full-precision floats that CSV's
// 6-decimal quantization cannot represent.
func genPing(rng *rand.Rand) sample.Sample {
	s := sample.Sample{
		VP: sample.VantagePoint{
			ProbeID:   fmt.Sprintf("probe-%d", rng.Intn(500)),
			Platform:  []string{"speedchecker", "atlas"}[rng.Intn(2)],
			Country:   []string{"DE", "US", "JP", "BR", "KE", "IN"}[rng.Intn(6)],
			Continent: geo.Continent(1 + rng.Intn(6)),
			ISP:       asn.Number(rng.Uint32()),
			Access:    lastmile.Access(rng.Intn(3)),
		},
		Target: sample.Target{
			Region:    fmt.Sprintf("region-%d", rng.Intn(60)),
			Provider:  []string{"AMZN", "GCP", "MSFT"}[rng.Intn(3)],
			Country:   []string{"IE", "US", "SG", "ZA"}[rng.Intn(4)],
			Continent: geo.Continent(1 + rng.Intn(6)),
			IP:        netaddr.IP(rng.Uint32()),
		},
		Protocol: sample.Protocol(rng.Intn(2)),
		RTTms:    rng.Float64()*300 + rng.Float64()*1e-9, // sub-CSV-precision bits
		Cycle:    rng.Intn(12),
	}
	// The decoders re-derive VTime from (cycle, country); stamping the
	// fixture the same way keeps round trips DeepEqual-exact.
	s.VTime = sample.VTimeOf(s.Cycle, s.VP.Country)
	return s
}

func genTrace(rng *rand.Rand) sample.TraceSample {
	p := genPing(rng)
	t := sample.TraceSample{VP: p.VP, Target: p.Target, Cycle: p.Cycle, VTime: p.VTime}
	n := rng.Intn(12)
	for i := 0; i < n; i++ {
		hop := sample.Hop{TTL: i + 1, RTTms: rng.Float64() * 250, Responded: rng.Intn(4) > 0}
		// The JSONL reference format only carries an address for hops
		// that responded; keep the fixture representable there so the
		// cross-codec comparison stays exact.
		if hop.Responded {
			hop.IP = netaddr.IP(rng.Uint32())
		}
		t.Hops = append(t.Hops, hop)
	}
	if n > 0 {
		// Keep Reached() semantics representative on some traces.
		t.Hops[n-1].Responded = true
		t.Hops[n-1].IP = t.Target.IP
	}
	return t
}

func genRecords(seed int64, nPings, nTraces int) ([]sample.Sample, []sample.TraceSample) {
	rng := rand.New(rand.NewSource(seed))
	pings := make([]sample.Sample, nPings)
	for i := range pings {
		pings[i] = genPing(rng)
	}
	traces := make([]sample.TraceSample, nTraces)
	for i := range traces {
		traces[i] = genTrace(rng)
	}
	return pings, traces
}

// encodeStream writes the records interleaved (the campaign collector
// interleaves pings and traces) and seals the stream.
func encodeStream(t *testing.T, pings []sample.Sample, traces []sample.TraceSample) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	ti := 0
	for i, p := range pings {
		if err := w.Ping(p); err != nil {
			t.Fatalf("Ping: %v", err)
		}
		// Roughly one trace per four pings, in stream order.
		if i%4 == 0 && ti < len(traces) {
			if err := w.Trace(traces[ti]); err != nil {
				t.Fatalf("Trace: %v", err)
			}
			ti++
		}
	}
	for ; ti < len(traces); ti++ {
		if err := w.Trace(traces[ti]); err != nil {
			t.Fatalf("Trace: %v", err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return buf.Bytes()
}

func decodeStream(t *testing.T, raw []byte) ([]sample.Sample, []sample.TraceSample) {
	t.Helper()
	var pings []sample.Sample
	var traces []sample.TraceSample
	_, _, err := NewReader(bytes.NewReader(raw), Options{}).Scan(
		func(s sample.Sample) error { pings = append(pings, s); return nil },
		func(tr sample.TraceSample) error { traces = append(traces, tr); return nil },
	)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return pings, traces
}

// The wire codec must round-trip every field of every record with bit
// exactness — compared against the NDJSON/CSV reference path, which
// quantizes ping RTTs to 6 decimals.
func TestRoundTripExactVsNDJSON(t *testing.T) {
	pings, traces := genRecords(7, 1500, 400)
	raw := encodeStream(t, pings, traces)

	gotPings, gotTraces := decodeStream(t, raw)
	if !reflect.DeepEqual(gotPings, pings) {
		t.Fatalf("wire ping round-trip diverged (%d vs %d records)", len(gotPings), len(pings))
	}
	if !reflect.DeepEqual(gotTraces, traces) {
		t.Fatalf("wire trace round-trip diverged (%d vs %d records)", len(gotTraces), len(traces))
	}

	// Reference path: the published dataset's CSV/JSONL codecs.
	var csvBuf, jsonlBuf bytes.Buffer
	fs := dataset.NewFileSink(&csvBuf, &jsonlBuf)
	for _, p := range pings {
		if err := fs.Ping(p); err != nil {
			t.Fatalf("csv ping: %v", err)
		}
	}
	for _, tr := range traces {
		if err := fs.Trace(tr); err != nil {
			t.Fatalf("jsonl trace: %v", err)
		}
	}
	if err := fs.Close(); err != nil {
		t.Fatalf("file sink close: %v", err)
	}
	csvPings, err := dataset.ReadPingsCSV(bytes.NewReader(csvBuf.Bytes()))
	if err != nil {
		t.Fatalf("csv scan: %v", err)
	}
	jsonTraces, err := dataset.ReadTracesJSONL(bytes.NewReader(jsonlBuf.Bytes()))
	if err != nil {
		t.Fatalf("jsonl scan: %v", err)
	}

	quantized := 0
	for i := range pings {
		w, c := gotPings[i], csvPings[i]
		// Every non-RTT field agrees across all three representations.
		w.RTTms, c.RTTms = 0, 0
		if !reflect.DeepEqual(w, c) {
			t.Fatalf("ping %d: wire and csv disagree on non-RTT fields:\nwire %+v\ncsv  %+v", i, w, c)
		}
		if gotPings[i].RTTms != pings[i].RTTms {
			t.Fatalf("ping %d: wire RTT %v != original %v", i, gotPings[i].RTTms, pings[i].RTTms)
		}
		if csvPings[i].RTTms != pings[i].RTTms {
			quantized++ // CSV's 6-decimal cells drop the low bits
		}
		if math.Abs(csvPings[i].RTTms-pings[i].RTTms) > 1e-6 {
			t.Fatalf("ping %d: csv RTT diverged beyond its quantization: %v vs %v",
				i, csvPings[i].RTTms, pings[i].RTTms)
		}
	}
	if quantized == 0 {
		t.Error("fixture never exercised CSV quantization; sub-1e-6 RTT bits expected")
	}
	if !reflect.DeepEqual(jsonTraces, gotTraces) {
		t.Fatalf("wire and jsonl trace decodes disagree")
	}
}

// Cutting the stream anywhere must yield ErrTruncated (mid-frame or
// missing EOF), never a silent partial decode or a panic.
func TestTruncationDetected(t *testing.T) {
	pings, traces := genRecords(11, 300, 60)
	raw := encodeStream(t, pings, traces)
	for _, cut := range []int{0, 1, 4, 5, 6, len(raw) / 3, len(raw) / 2, len(raw) - 5, len(raw) - 1} {
		_, _, err := NewReader(bytes.NewReader(raw[:cut]), Options{}).Scan(nil, nil)
		if err == nil {
			t.Fatalf("cut at %d/%d decoded cleanly", cut, len(raw))
		}
		if !errors.Is(err, ErrTruncated) {
			t.Fatalf("cut at %d/%d: got %v, want ErrTruncated", cut, len(raw), err)
		}
	}
}

// A flipped payload byte must fail the CRC, not decode to wrong data.
func TestCorruptionFailsCRC(t *testing.T) {
	pings, traces := genRecords(13, 200, 40)
	raw := encodeStream(t, pings, traces)
	for _, idx := range []int{8, 64, len(raw) / 2, len(raw) - 6} {
		mut := append([]byte(nil), raw...)
		mut[idx] ^= 0x40
		_, _, err := NewReader(bytes.NewReader(mut), Options{}).Scan(nil, nil)
		if err == nil {
			t.Fatalf("flip at %d decoded cleanly", idx)
		}
	}
	// Flip specifically inside the first frame's payload → ErrCRC.
	mut := append([]byte(nil), raw...)
	mut[8] ^= 0x01
	if _, _, err := NewReader(bytes.NewReader(mut), Options{}).Scan(nil, nil); !errors.Is(err, ErrCRC) {
		t.Fatalf("payload flip: got %v, want ErrCRC", err)
	}
}

// Version skew and bad magic are refused up front.
func TestPreambleValidation(t *testing.T) {
	raw := encodeStream(t, []sample.Sample{genPing(rand.New(rand.NewSource(1)))}, nil)

	skew := append([]byte(nil), raw...)
	skew[4] = Version + 1
	if _, _, err := NewReader(bytes.NewReader(skew), Options{}).Scan(nil, nil); !errors.Is(err, ErrVersion) {
		t.Fatalf("version skew: got %v, want ErrVersion", err)
	}

	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, _, err := NewReader(bytes.NewReader(bad), Options{}).Scan(nil, nil); !errors.Is(err, ErrMagic) {
		t.Fatalf("bad magic: got %v, want ErrMagic", err)
	}
}

// Control frames interleave transparently with record batches, and the
// mid-stream Close (flush) that RunCampaigns issues between campaigns
// must not corrupt the stream.
func TestControlFramesAndMidStreamClose(t *testing.T) {
	pings, traces := genRecords(17, 90, 20)
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	for i, p := range pings {
		if err := w.Ping(p); err != nil {
			t.Fatal(err)
		}
		if i == 30 {
			if err := w.Close(); err != nil { // campaign boundary
				t.Fatal(err)
			}
			if err := w.Frames().WriteFrame(append([]byte{FrameControl}, `{"type":"heartbeat"}`...)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, tr := range traces {
		if err := w.Trace(tr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	gotPings, gotTraces := decodeStream(t, buf.Bytes())
	if !reflect.DeepEqual(gotPings, pings) || !reflect.DeepEqual(gotTraces, traces) {
		t.Fatal("stream with control frames and mid-stream flush diverged")
	}
}

// The EOF totals must match the records the stream actually carries.
func TestEOFTotalsChecked(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.Ping(genPing(rand.New(rand.NewSource(3)))); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Forge an EOF frame promising more records than were written.
	if err := w.Frames().WriteFrame(EncodeEOF(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Frames().Flush(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewReader(bytes.NewReader(buf.Bytes()), Options{}).Scan(nil, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("forged totals: got %v, want ErrTruncated", err)
	}
}

// An empty finished stream decodes to zero records, cleanly.
func TestEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Options{})
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	p, tr, err := NewReader(bytes.NewReader(buf.Bytes()), Options{}).Scan(nil, nil)
	if err != nil || p != 0 || tr != 0 {
		t.Fatalf("empty stream: pings=%d traces=%d err=%v", p, tr, err)
	}
	// And a zero-byte reader is truncated, not clean.
	if _, _, err := NewReader(bytes.NewReader(nil), Options{}).Scan(nil, nil); !errors.Is(err, ErrTruncated) {
		t.Fatalf("zero-byte stream: got %v, want ErrTruncated", err)
	}
}

var errStop = errors.New("stop")

// Callback errors abort the scan and surface as-is.
func TestCallbackErrorPropagates(t *testing.T) {
	pings, _ := genRecords(23, 10, 0)
	raw := encodeStream(t, pings, nil)
	_, _, err := NewReader(bytes.NewReader(raw), Options{}).Scan(
		func(sample.Sample) error { return errStop }, nil)
	if !errors.Is(err, errStop) {
		t.Fatalf("got %v, want errStop", err)
	}
}

// The frame reader must be driveable from any io.Reader, including one
// that returns a byte at a time (a slow TCP peer).
func TestOneByteAtATimeReader(t *testing.T) {
	pings, traces := genRecords(29, 120, 30)
	raw := encodeStream(t, pings, traces)
	r := iotest(bytes.NewReader(raw))
	var nP, nT int
	_, _, err := NewReader(r, Options{}).Scan(
		func(sample.Sample) error { nP++; return nil },
		func(sample.TraceSample) error { nT++; return nil })
	if err != nil || nP != len(pings) || nT != len(traces) {
		t.Fatalf("one-byte reader: pings=%d traces=%d err=%v", nP, nT, err)
	}
}

type oneByteReader struct{ r io.Reader }

func iotest(r io.Reader) io.Reader { return &oneByteReader{r} }

func (o *oneByteReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}
