package world

import (
	"repro/internal/asn"
	"repro/internal/geo"
)

// tier1Table lists the global transit carriers of the synthetic
// Internet, using their real ASNs. Telia, GTT, NTT and TATA are the
// carriers the paper names explicitly (§6.1, §6.2).
var tier1Table = []struct {
	asn     asn.Number
	name    string
	country string
}{
	{1299, "Telia Carrier", "SE"},
	{3257, "GTT Communications", "US"},
	{2914, "NTT Global IP Network", "JP"},
	{6453, "TATA Communications", "IN"},
	{3356, "Lumen", "US"},
	{174, "Cogent", "US"},
	{6762, "Telecom Italia Sparkle", "IT"},
	{6461, "Zayo", "US"},
	{3491, "PCCW Global", "HK"},
	{5511, "Orange International Carriers", "FR"},
	{12956, "Telxius", "ES"},
	{1273, "Vodafone Carrier Services", "GB"},
}

// namedISPTable carries the access ISPs the paper's case studies name,
// with their real ASNs. relUsers is the ISP's share within its country
// (used to rank "top-5 ISPs by recorded measurements"). hasTier1 marks
// large eyeballs that buy transit from a Tier-1 directly, which is what
// makes single-carrier private interconnects possible.
var namedISPTable = []struct {
	asn      asn.Number
	name     string
	country  string
	relUsers float64
	hasTier1 bool
}{
	// Germany (Fig 12a).
	{3320, "Deutsche Telekom", "DE", 0.34, true},
	{3209, "Vodafone DE", "DE", 0.27, true},
	{6805, "Telefonica DE", "DE", 0.18, true},
	{6830, "Liberty Global", "DE", 0.12, true},
	{8881, "1&1 Versatel", "DE", 0.12, true},
	// Japan (Fig 13a).
	{2516, "KDDI", "JP", 0.27, true},
	{2518, "BIGLOBE", "JP", 0.13, true},
	{4713, "NTT OCN", "JP", 0.33, true},
	{17511, "OPTAGE", "JP", 0.10, true},
	{17676, "SoftBank", "JP", 0.17, true},
	// Ukraine (Fig 17a).
	{3255, "UARNet", "UA", 0.12, true},
	{3326, "Datagroup", "UA", 0.18, true},
	{6849, "Ukrtelecom", "UA", 0.24, true},
	{15895, "Kyivstar", "UA", 0.30, true},
	{25229, "Volia", "UA", 0.16, false},
	// Bahrain (Fig 18a).
	{5416, "Batelco", "BH", 0.38, true},
	{31452, "ZAIN Bahrain", "BH", 0.24, true},
	{39273, "Kalaam Telecom", "BH", 0.14, false},
	{51375, "stc Bahrain", "BH", 0.24, true},
	// United Kingdom (endpoint-side context for Figs 12/17).
	{2856, "BT", "GB", 0.32, true},
	{5089, "Virgin Media", "GB", 0.24, true},
	{5607, "Sky UK", "GB", 0.22, true},
	{13285, "TalkTalk", "GB", 0.13, true},
	{12576, "EE", "GB", 0.09, false},
	// United States and Brazil (dense-probe countries in Fig 9).
	{7922, "Comcast", "US", 0.30, true},
	{701, "Verizon", "US", 0.22, true},
	{7018, "AT&T", "US", 0.26, true},
	{209, "CenturyLink Consumer", "US", 0.12, true},
	{20115, "Charter", "US", 0.10, true},
	{28573, "Claro BR", "BR", 0.28, true},
	{27699, "Telefonica BR (Vivo)", "BR", 0.32, true},
	{7738, "Oi", "BR", 0.18, true},
	{28220, "TIM BR", "BR", 0.22, false},
	// India (endpoint-side for Fig 13/18).
	{9829, "BSNL", "IN", 0.18, false},
	{45609, "Airtel India", "IN", 0.30, true},
	{55836, "Reliance Jio", "IN", 0.40, true},
	{9498, "Bharti Airtel Transit", "IN", 0.12, true},
}

// ixpTable lists the major exchanges used to tag on-path IXP hops
// (CAIDA IXP dataset equivalent, §3.3).
var ixpTable = []struct {
	asn     asn.Number
	name    string
	country string
	lat     float64
	lon     float64
}{
	{51706, "DE-CIX Frankfurt", "DE", 50.11, 8.68},
	{1200, "AMS-IX", "NL", 52.37, 4.90},
	{5459, "LINX", "GB", 51.51, -0.13},
	{51105, "France-IX", "FR", 48.86, 2.35},
	{8674, "Netnod", "SE", 59.33, 18.07},
	{42476, "SwissIX", "CH", 47.38, 8.54},
	{715, "Equinix Ashburn", "US", 39.04, -77.49},
	{11670, "NYIIX", "US", 40.71, -74.01},
	{26162, "IX.br Sao Paulo", "BR", -23.55, -46.63},
	{52005, "CABASE Buenos Aires", "AR", -34.60, -58.38},
	{7527, "JPNAP Tokyo", "JP", 35.68, 139.69},
	{4635, "HKIX", "HK", 22.32, 114.17},
	{24115, "Equinix Singapore", "SG", 1.35, 103.82},
	{37195, "NAPAfrica Johannesburg", "ZA", -26.20, 28.05},
	{33713, "CAIX Cairo", "EG", 30.05, 31.24},
	{24029, "Equinix Sydney", "AU", -33.87, 151.21},
}

// Interconnect is the ground-truth interconnection kind the builder
// chose for a <provider, serving ISP> pair. The traceroute pipeline
// must re-derive these from paths alone (§6.1); the recorded intent is
// the oracle tests compare against.
type Interconnect uint8

// Interconnection kinds.
const (
	IcPublic Interconnect = iota
	IcPrivateTransit
	IcDirect
	IcDirectIXP // direct peering established over a public IXP fabric
)

// String returns the label used in the paper's figures.
func (ic Interconnect) String() string {
	switch ic {
	case IcDirect:
		return "direct"
	case IcDirectIXP:
		return "1 IXP"
	case IcPrivateTransit:
		return "1 AS"
	case IcPublic:
		return "2+ AS"
	default:
		return "?"
	}
}

// overrideTable pins the <named ISP, provider> interconnections the
// paper's case-study figures report explicitly (Figs 12a, 13a, 17a,
// 18a), so the case studies reproduce deterministically.
var overrideTable = map[asn.Number]map[string]Interconnect{
	// Germany: hypergiants peer directly with all top ISPs; everything
	// else enters via a single private interconnect, except
	// Telefonica→Alibaba and Vodafone→DigitalOcean which ride the
	// public Internet (Fig 12a).
	3320: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPrivateTransit, "IBM": IcDirectIXP,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	3209: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPublic, "BABA": IcPrivateTransit, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	6805: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	6830: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPrivateTransit, "IBM": IcDirectIXP,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	8881: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPrivateTransit, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	// Japan: big-3 direct except NTT→Amazon; DigitalOcean strictly
	// public (no Asian PoPs); Alibaba and IBM public; the small
	// providers ride a single carrier (NTT AS2914 in-country, TATA
	// AS6453 towards India) (Fig 13a, §6.2).
	2516: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	2518: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	4713: {"AMZN": IcPrivateTransit, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcPrivateTransit,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	17511: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPublic, "ORCL": IcPrivateTransit},
	17676: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPublic},
	// Ukraine: the hypergiant direct-peering trend repeats; the rest is
	// a private/public mix (Fig 17a).
	3255: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcDirectIXP,
		"LIN": IcPublic, "VLTR": IcPrivateTransit, "ORCL": IcPublic},
	3326: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPublic, "ORCL": IcPrivateTransit},
	6849: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPrivateTransit, "ORCL": IcPublic},
	15895: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPublic, "VLTR": IcPrivateTransit, "ORCL": IcPrivateTransit},
	25229: {"AMZN": IcDirect, "GCP": IcDirect, "MSFT": IcPrivateTransit, "LTSL": IcDirect,
		"DO": IcPrivateTransit, "BABA": IcPublic, "IBM": IcDirectIXP,
		"LIN": IcPrivateTransit, "VLTR": IcPublic, "ORCL": IcPublic},
	// Bahrain: direct interconnections are rare — Microsoft and Google
	// peer with a handful of serving ISPs; everything else is private
	// transit or public backhaul (Fig 18a).
	5416: {"AMZN": IcPrivateTransit, "GCP": IcDirect, "MSFT": IcDirect, "LTSL": IcPrivateTransit,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPrivateTransit, "VLTR": IcPublic, "ORCL": IcPrivateTransit},
	31452: {"AMZN": IcPrivateTransit, "GCP": IcDirect, "MSFT": IcPrivateTransit, "LTSL": IcPrivateTransit,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPublic, "VLTR": IcPublic, "ORCL": IcPublic},
	39273: {"AMZN": IcPublic, "GCP": IcPrivateTransit, "MSFT": IcPrivateTransit, "LTSL": IcPublic,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPublic,
		"LIN": IcPrivateTransit, "VLTR": IcPublic, "ORCL": IcPrivateTransit},
	51375: {"AMZN": IcPrivateTransit, "GCP": IcPrivateTransit, "MSFT": IcDirect, "LTSL": IcPrivateTransit,
		"DO": IcPublic, "BABA": IcPublic, "IBM": IcPrivateTransit,
		"LIN": IcPublic, "VLTR": IcPrivateTransit, "ORCL": IcPublic},
}

// submarine and terrestrial routing inflation between country pairs.
// Values multiply great-circle distance to give fibre-route distance.
// The country-pair overrides encode the undersea-cable geography §4.3
// leans on: North Africa reaching Europe quickly, Andean countries
// reaching North America on Pacific cables while tromboning to Brazil,
// and East Africa's direct cables to South Africa.
var inflationOverride = map[[2]string]float64{}

func init() {
	add := func(from []string, to []string, f float64) {
		for _, a := range from {
			for _, b := range to {
				inflationOverride[[2]string{a, b}] = f
				inflationOverride[[2]string{b, a}] = f
			}
		}
	}
	northAF := []string{"EG", "MA", "DZ", "TN", "LY", "SD"}
	westAF := []string{"SN", "NG", "GH", "CI", "CM", "BF", "ML", "BJ", "TG"}
	eastAF := []string{"KE", "TZ", "UG", "RW", "ET", "MU", "MG"}
	southAF := []string{"ZA", "BW", "NA", "MZ", "ZW", "ZM", "AO"}
	andes := []string{"BO", "PE", "EC"}
	northSA := []string{"CO", "VE", "GY", "SR"}

	// Mediterranean cables: fast, stable track to Europe.
	add(northAF, []string{"DE", "GB", "FR", "IT", "ES", "NL", "PT", "GR", "IE", "BE", "CH"}, 1.45)
	// North Africa to the in-continent (South African) datacenters:
	// long coastal submarine detours.
	add(northAF, southAF, 4.0)
	add(westAF, southAF, 2.6)
	// East Africa reaches South Africa on the EASSy cable directly.
	add(eastAF, southAF, 2.1)
	// East Africa to Europe: stable but long (via Red Sea / Suez).
	add(eastAF, []string{"DE", "GB", "FR", "IT", "NL"}, 1.5)
	// Africa to North America crosses to Europe first, then the
	// well-provisioned Atlantic.
	add(northAF, []string{"US", "CA"}, 1.55)
	add(westAF, []string{"US", "CA"}, 1.5)
	add(eastAF, []string{"US", "CA"}, 1.6)
	add(southAF, []string{"US", "CA"}, 1.55)
	// Andean countries: Pacific cables run straight to North America...
	add(andes, []string{"US", "CA", "MX"}, 1.45)
	// ...while reaching Brazil trombones through coastal systems
	// (often via Miami in practice).
	add(andes, []string{"BR"}, 3.3)
	add(northSA, []string{"US", "CA"}, 1.4)
	add(northSA, []string{"BR"}, 2.1)
	// Bahrain and the Gulf reach India over busy but direct cables.
	add([]string{"BH", "AE", "SA", "QA", "KW", "OM"}, []string{"IN"}, 1.7)
	// Japan/Korea to India: long multi-segment submarine route.
	add([]string{"JP", "KR"}, []string{"IN"}, 1.9)
	// China's domestic backbone is dense and short — the one place the
	// paper finds end-to-end medians under the 20 ms MTP bound (§4.1).
	add([]string{"CN"}, []string{"CN"}, 1.35)
}

// continentInflation is the base distance inflation for public-Internet
// paths inside and between continents, reflecting how well-provisioned
// each region's backbone is.
var continentInflation = map[[2]geo.Continent]float64{
	{geo.EU, geo.EU}: 1.35,
	{geo.NA, geo.NA}: 1.40,
	{geo.EU, geo.NA}: 1.35,
	{geo.AS, geo.AS}: 1.85,
	{geo.EU, geo.AS}: 1.70,
	{geo.NA, geo.AS}: 1.60,
	{geo.SA, geo.SA}: 1.90,
	{geo.NA, geo.SA}: 1.55,
	{geo.EU, geo.SA}: 1.65,
	{geo.AF, geo.AF}: 2.20,
	{geo.EU, geo.AF}: 1.60,
	{geo.NA, geo.AF}: 1.70,
	{geo.AS, geo.AF}: 1.95,
	{geo.OC, geo.OC}: 1.55,
	{geo.AS, geo.OC}: 1.65,
	{geo.NA, geo.OC}: 1.55,
	{geo.EU, geo.OC}: 1.70,
	{geo.SA, geo.AS}: 1.90,
	{geo.SA, geo.AF}: 2.10,
	{geo.SA, geo.OC}: 1.90,
	{geo.AF, geo.OC}: 2.00,
}

// PathInflation returns the distance inflation factor for a public
// path between two countries.
func PathInflation(fromCountry, toCountry string) float64 {
	if f, ok := inflationOverride[[2]string{fromCountry, toCountry}]; ok {
		return f
	}
	a, aok := geo.CountryByCode(fromCountry)
	b, bok := geo.CountryByCode(toCountry)
	if !aok || !bok {
		return 1.8
	}
	key := [2]geo.Continent{a.Continent, b.Continent}
	if f, ok := continentInflation[key]; ok {
		return f
	}
	if f, ok := continentInflation[[2]geo.Continent{b.Continent, a.Continent}]; ok {
		return f
	}
	return 1.8
}

// PrivateWANInflation is the floor distance inflation inside a cloud
// provider's private backbone: near-optimal fibre routes.
const PrivateWANInflation = 1.18

// PrivateWANInflationFor returns the distance inflation of a private
// WAN haul between two countries. Providers lease or build the best
// fibre available, but they cannot beat the cable geography: a private
// backbone between North Africa and South Africa still rides the same
// coastal submarine systems, just with fewer detours. The factor is
// therefore a discounted public inflation with a near-optimal floor.
func PrivateWANInflationFor(fromCountry, toCountry string) float64 {
	f := PathInflation(fromCountry, toCountry) * 0.85
	if f < PrivateWANInflation {
		return PrivateWANInflation
	}
	return f
}
