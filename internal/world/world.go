// Package world synthesizes the Internet the study measures over: a
// country-structured AS ecosystem (access ISPs, national transit,
// global Tier-1 carriers), the exchanges they meet at, the ten cloud
// services of Table 1 with their WAN points of presence, and the
// interconnection decisions between every serving ISP and every cloud
// provider.
//
// The real study measured over the production Internet; this package is
// the substitution documented in DESIGN.md. Everything is deterministic
// given a seed, so experiments reproduce bit-for-bit.
package world

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/asn"
	"repro/internal/bgp"
	"repro/internal/cloud"
	"repro/internal/geo"
	"repro/internal/netaddr"
)

// PoP is a network point of presence.
type PoP struct {
	Loc     geo.Point
	Country string
}

// IXP is an Internet exchange point (the CAIDA IXP dataset equivalent).
type IXP struct {
	ASN     asn.Number
	Name    string
	Country string
	Loc     geo.Point
	Prefix  netaddr.Prefix
}

// Config parameterizes world synthesis.
type Config struct {
	// Seed drives all randomized decisions. The same seed yields an
	// identical world.
	Seed int64
	// Tier1AttachProb is the probability a synthetic access ISP buys
	// transit from a Tier-1 directly (default 0.35).
	Tier1AttachProb float64
	// IXPDirectProb is the probability a policy-chosen direct peering
	// is established over a public IXP fabric rather than a PNI
	// (default 0.10; IBM uses 0.35, see §6.2).
	IXPDirectProb float64
	// ForcePublicPeering is an ablation switch: every <ISP, provider>
	// pair rides the public Internet, erasing the paper's peering
	// fabric (used by the ablation benches to show what direct peering
	// buys).
	ForcePublicPeering bool
}

func (c Config) withDefaults() Config {
	if c.Tier1AttachProb == 0 {
		c.Tier1AttachProb = 0.35
	}
	if c.IXPDirectProb == 0 {
		c.IXPDirectProb = 0.10
	}
	return c
}

type icKey struct {
	isp      asn.Number
	provider string
}

// World is the fully built synthetic Internet.
type World struct {
	Config    Config
	Inventory *cloud.Inventory
	Registry  *asn.Registry
	Graph     *bgp.Graph

	tier1s          []*asn.AS
	tier2ByCountry  map[string][]*asn.AS
	accessByCountry map[string][]*asn.AS
	ixps            []*IXP
	pops            map[asn.Number][]PoP
	prefixes        map[asn.Number]netaddr.Prefix
	providerByASN   map[asn.Number]*cloud.Provider
	ic              map[icKey]Interconnect
	ixpByASN        map[asn.Number]*IXP
}

// Build synthesizes a world from the configuration.
func Build(cfg Config) (*World, error) {
	cfg = cfg.withDefaults()
	w := &World{
		Config:          cfg,
		Inventory:       cloud.NewInventory(),
		Registry:        &asn.Registry{},
		Graph:           &bgp.Graph{},
		tier2ByCountry:  make(map[string][]*asn.AS),
		accessByCountry: make(map[string][]*asn.AS),
		pops:            make(map[asn.Number][]PoP),
		prefixes:        make(map[asn.Number]netaddr.Prefix),
		providerByASN:   make(map[asn.Number]*cloud.Provider),
		ic:              make(map[icKey]Interconnect),
		ixpByASN:        make(map[asn.Number]*IXP),
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	if err := w.buildTier1s(rng); err != nil {
		return nil, err
	}
	if err := w.buildIXPs(); err != nil {
		return nil, err
	}
	if err := w.buildCountries(rng); err != nil {
		return nil, err
	}
	if err := w.buildClouds(rng); err != nil {
		return nil, err
	}
	return w, nil
}

// MustBuild is Build for tests and examples; it panics on error.
func MustBuild(cfg Config) *World {
	w, err := Build(cfg)
	if err != nil {
		panic(err)
	}
	return w
}

// ---- accessors ----

// Tier1s returns the global carriers.
func (w *World) Tier1s() []*asn.AS { return w.tier1s }

// AccessISPs returns the serving ISPs of a country, largest first.
func (w *World) AccessISPs(country string) []*asn.AS {
	return w.accessByCountry[country]
}

// Tier2s returns the national transit providers of a country.
func (w *World) Tier2s(country string) []*asn.AS { return w.tier2ByCountry[country] }

// IXPs returns all exchanges.
func (w *World) IXPs() []*IXP { return w.ixps }

// IXPByASN returns the exchange with the given peering-LAN ASN.
func (w *World) IXPByASN(n asn.Number) (*IXP, bool) {
	x, ok := w.ixpByASN[n]
	return x, ok
}

// NearestIXP returns the exchange closest to p.
func (w *World) NearestIXP(p geo.Point) *IXP {
	var best *IXP
	bestD := math.Inf(1)
	for _, x := range w.ixps {
		if d := geo.DistanceKm(p, x.Loc); d < bestD {
			best, bestD = x, d
		}
	}
	return best
}

// ProviderByASN maps a cloud WAN ASN back to its provider.
func (w *World) ProviderByASN(n asn.Number) (*cloud.Provider, bool) {
	p, ok := w.providerByASN[n]
	return p, ok
}

// PoPs returns the points of presence of an AS.
func (w *World) PoPs(n asn.Number) []PoP { return w.pops[n] }

// NearestPoP returns the AS's PoP closest to p. ok is false when the AS
// has no PoPs.
func (w *World) NearestPoP(n asn.Number, p geo.Point) (PoP, bool) {
	pops := w.pops[n]
	if len(pops) == 0 {
		return PoP{}, false
	}
	best, bestD := pops[0], geo.DistanceKm(p, pops[0].Loc)
	for _, cand := range pops[1:] {
		if d := geo.DistanceKm(p, cand.Loc); d < bestD {
			best, bestD = cand, d
		}
	}
	return best, true
}

// Prefix returns the address block announced by an AS.
func (w *World) Prefix(n asn.Number) (netaddr.Prefix, bool) {
	p, ok := w.prefixes[n]
	return p, ok
}

// RouterIP returns a deterministic router address inside the AS's
// block. Distinct indexes yield distinct addresses within a pool of up
// to 4096 routers (fewer for small blocks such as IXP peering LANs).
func (w *World) RouterIP(n asn.Number, idx int) netaddr.IP {
	p, ok := w.prefixes[n]
	if !ok {
		return 0
	}
	if idx < 0 {
		idx = -idx
	}
	pool := uint64(4096)
	base := uint64(16)
	if avail := p.NumAddresses(); base+pool > avail {
		base = 1
		pool = avail - base
	}
	return p.Nth(base + uint64(idx)%pool)
}

// ProbeIP returns a deterministic public address for the i-th probe
// homed in the given access ISP.
func (w *World) ProbeIP(isp asn.Number, i int) netaddr.IP {
	p, ok := w.prefixes[isp]
	if !ok {
		return 0
	}
	span := p.NumAddresses() - 8192
	return p.Nth(8192 + uint64(i)%span)
}

// RegionIP returns the address of the public VM endpoint in a region
// (the CloudHarmony-style hostname target, §3.1).
func (w *World) RegionIP(r *cloud.Region) netaddr.IP {
	p, ok := w.prefixes[r.Provider.ASN]
	if !ok {
		return 0
	}
	for i, cand := range w.Inventory.RegionsOf(r.Provider.Code) {
		if cand.ID == r.ID {
			return p.Nth(uint64(i+1)*256 + 10)
		}
	}
	return 0
}

// Interconnect returns the interconnection kind chosen for a
// <serving ISP, provider> pair.
func (w *World) Interconnect(isp asn.Number, providerCode string) Interconnect {
	return w.ic[icKey{isp, providerCode}]
}

// CarrierFor returns the transit carrier that hauls a private
// interconnect between the ISP and a datacenter in regionCountry. The
// choice prefers a carrier headquartered in the destination country
// (TATA for Indian DCs), then one in the ISP's country (NTT for
// Japanese ISPs), then the ISP's first Tier-1, then its Tier-2.
func (w *World) CarrierFor(isp *asn.AS, regionCountry string) asn.Number {
	var tier1s, others []asn.Number
	for _, p := range w.Graph.Providers(isp.Number) {
		if a, ok := w.Registry.Lookup(p); ok && a.Type == asn.TypeTier1 {
			tier1s = append(tier1s, p)
		} else {
			others = append(others, p)
		}
	}
	pick := func(country string) (asn.Number, bool) {
		for _, n := range tier1s {
			if a, ok := w.Registry.Lookup(n); ok && a.Country == country {
				return n, true
			}
		}
		return 0, false
	}
	if n, ok := pick(regionCountry); ok {
		return n
	}
	if n, ok := pick(isp.Country); ok {
		return n
	}
	if len(tier1s) > 0 {
		return tier1s[0]
	}
	if len(others) > 0 {
		return others[0]
	}
	return 0
}

// CloudPath returns the AS-level path tenant traffic takes from the
// serving ISP to the given region, together with the interconnection
// kind realized. ok is false when the ISP cannot reach the provider.
func (w *World) CloudPath(isp *asn.AS, region *cloud.Region) ([]asn.Number, Interconnect, bool) {
	prov := region.Provider
	kind := w.Interconnect(isp.Number, prov.Code)
	switch kind {
	case IcDirect, IcDirectIXP:
		return []asn.Number{isp.Number, prov.ASN}, kind, true
	case IcPrivateTransit:
		carrier := w.CarrierFor(isp, region.Country)
		if carrier == 0 {
			break // fall through to public
		}
		return []asn.Number{isp.Number, carrier, prov.ASN}, kind, true
	}
	path, ok := w.Graph.Path(isp.Number, prov.ASN)
	if ok && len(path) < 4 {
		// The best valley-free route happens to be short (the ISP's own
		// Tier-1 carries the provider), but this pair exchanges no
		// peering paperwork: tenant traffic takes the full hierarchical
		// route through the regional transit and the Tier-1 mesh.
		if detour, dok := w.publicDetour(isp, prov.ASN); dok {
			path = detour
		}
	}
	return path, IcPublic, ok
}

// publicDetour builds the canonical public-Internet route
// ISP → national transit → Tier-1 (→ peer Tier-1) → provider.
func (w *World) publicDetour(isp *asn.AS, prov asn.Number) ([]asn.Number, bool) {
	var tier2 asn.Number
	for _, p := range w.Graph.Providers(isp.Number) {
		if a, ok := w.Registry.Lookup(p); ok && a.Type == asn.TypeTier2 {
			tier2 = p
			break
		}
	}
	if tier2 == 0 {
		return nil, false
	}
	provUp := map[asn.Number]bool{}
	for _, p := range w.Graph.Providers(prov) {
		provUp[p] = true
	}
	provPeer := map[asn.Number]bool{}
	for _, p := range w.Graph.Peers(prov) {
		provPeer[p] = true
	}
	// Prefer a Tier-1 that serves both the national transit and the
	// provider; otherwise cross the Tier-1 peering mesh.
	var first asn.Number
	for _, t1 := range w.Graph.Providers(tier2) {
		a, ok := w.Registry.Lookup(t1)
		if !ok || a.Type != asn.TypeTier1 {
			continue
		}
		if provUp[t1] || provPeer[t1] {
			return []asn.Number{isp.Number, tier2, t1, prov}, true
		}
		if first == 0 {
			first = t1
		}
	}
	if first == 0 {
		return nil, false
	}
	for _, peer := range w.Graph.Peers(first) {
		if provUp[peer] || provPeer[peer] {
			return []asn.Number{isp.Number, tier2, first, peer, prov}, true
		}
	}
	return nil, false
}

// CloudIngress returns where tenant traffic enters the provider's
// network on its way from vpLoc to the region, per §6.2: direct paths
// ingress the WAN close to the vantage point, private interconnects
// ingress at an edge PoP part-way, and public paths only touch the
// provider at the datacenter itself.
func (w *World) CloudIngress(kind Interconnect, vpLoc geo.Point, region *cloud.Region) geo.Point {
	switch kind {
	case IcDirect, IcDirectIXP:
		if pop, ok := w.NearestPoP(region.Provider.ASN, vpLoc); ok {
			return pop.Loc
		}
	case IcPrivateTransit:
		mid := geo.Midpoint(vpLoc, region.Loc)
		if pop, ok := w.NearestPoP(region.Provider.ASN, mid); ok {
			return pop.Loc
		}
	}
	return region.Loc
}

// IXPForPeering returns the exchange a direct-via-IXP interconnect uses:
// the one nearest the ISP's home country.
func (w *World) IXPForPeering(isp *asn.AS) *IXP {
	c, ok := geo.CountryByCode(isp.Country)
	if !ok {
		return w.ixps[0]
	}
	return w.NearestIXP(c.Centroid)
}

// UserCoverageOf reports the fraction of global access-ISP users served
// by the given set of ISPs.
func (w *World) UserCoverageOf(isps map[asn.Number]bool) float64 {
	return w.Registry.UserCoverage(isps)
}

// ---- construction ----

const (
	synthTier2Base  = 190000
	synthAccessBase = 210000
)

func (w *World) buildTier1s(rng *rand.Rand) error {
	alloc := netaddr.NewAllocator(netaddr.MustParsePrefix("5.0.0.0/8"))
	for _, row := range tier1Table {
		p, err := alloc.Allocate(14)
		if err != nil {
			return fmt.Errorf("world: tier1 prefixes: %w", err)
		}
		c, _ := geo.CountryByCode(row.country)
		a := &asn.AS{
			Number: row.asn, Name: row.name, Type: asn.TypeTier1,
			Country: row.country, Continent: c.Continent,
			Prefixes: []netaddr.Prefix{p},
		}
		if err := w.Registry.Register(a); err != nil {
			return err
		}
		w.prefixes[a.Number] = p
		w.tier1s = append(w.tier1s, a)
	}
	// Full-mesh settlement-free peering at the top of the hierarchy.
	for i := range w.tier1s {
		for j := i + 1; j < len(w.tier1s); j++ {
			w.Graph.AddPeering(w.tier1s[i].Number, w.tier1s[j].Number)
		}
	}
	// Global PoP footprints: each carrier covers a deterministic ~60%
	// of countries; every country is guaranteed at least two carriers.
	for _, country := range geo.AllCountries() {
		present := 0
		for _, t := range w.tier1s {
			if t.Country == country.Code || rng.Float64() < 0.6 {
				w.pops[t.Number] = append(w.pops[t.Number], PoP{Loc: country.Centroid, Country: country.Code})
				present++
			}
		}
		for i := 0; present < 2 && i < len(w.tier1s); i++ {
			t := w.tier1s[i]
			if !w.hasPoPIn(t.Number, country.Code) {
				w.pops[t.Number] = append(w.pops[t.Number], PoP{Loc: country.Centroid, Country: country.Code})
				present++
			}
		}
	}
	return nil
}

func (w *World) hasPoPIn(n asn.Number, country string) bool {
	for _, p := range w.pops[n] {
		if p.Country == country {
			return true
		}
	}
	return false
}

func (w *World) buildIXPs() error {
	alloc := netaddr.NewAllocator(netaddr.MustParsePrefix("185.1.0.0/16"))
	for _, row := range ixpTable {
		p, err := alloc.Allocate(24)
		if err != nil {
			return fmt.Errorf("world: ixp prefixes: %w", err)
		}
		c, _ := geo.CountryByCode(row.country)
		a := &asn.AS{
			Number: row.asn, Name: row.name, Type: asn.TypeIXP,
			Country: row.country, Continent: c.Continent,
			Prefixes: []netaddr.Prefix{p},
		}
		if err := w.Registry.Register(a); err != nil {
			return err
		}
		w.prefixes[a.Number] = p
		x := &IXP{ASN: row.asn, Name: row.name, Country: row.country,
			Loc: geo.Point{Lat: row.lat, Lon: row.lon}, Prefix: p}
		w.ixps = append(w.ixps, x)
		w.ixpByASN[x.ASN] = x
		w.pops[a.Number] = []PoP{{Loc: x.Loc, Country: x.Country}}
	}
	return nil
}

func (w *World) buildCountries(rng *rand.Rand) error {
	tier2Alloc := netaddr.NewAllocator(netaddr.MustParsePrefix("31.0.0.0/8"))
	accessAlloc := netaddr.NewAllocator(netaddr.MustParsePrefix("60.0.0.0/6"))
	nextTier2 := asn.Number(synthTier2Base)
	nextAccess := asn.Number(synthAccessBase)

	named := make(map[string][]int) // country → rows in namedISPTable
	for i, row := range namedISPTable {
		named[row.country] = append(named[row.country], i)
	}

	for _, country := range geo.AllCountries() {
		// National transit (Tier-2) providers.
		nTier2 := 1
		if country.UserWeight >= 30 {
			nTier2 = 2
		}
		var tier2s []*asn.AS
		for i := 0; i < nTier2; i++ {
			p, err := tier2Alloc.Allocate(16)
			if err != nil {
				return fmt.Errorf("world: tier2 prefixes: %w", err)
			}
			a := &asn.AS{
				Number: nextTier2, Name: fmt.Sprintf("%s Transit %d", country.Code, i+1),
				Type: asn.TypeTier2, Country: country.Code, Continent: country.Continent,
				Prefixes: []netaddr.Prefix{p},
			}
			nextTier2++
			if err := w.Registry.Register(a); err != nil {
				return err
			}
			w.prefixes[a.Number] = p
			w.pops[a.Number] = []PoP{{Loc: country.Centroid, Country: country.Code}}
			tier2s = append(tier2s, a)
			// Each national transit buys from 2-3 global carriers.
			for _, t1 := range pickDistinct(rng, len(w.tier1s), 2+rng.Intn(2)) {
				w.Graph.AddTransit(w.tier1s[t1].Number, a.Number)
			}
		}
		w.tier2ByCountry[country.Code] = tier2s

		// Access ISPs: named ones first, synthetic fill to the target
		// count.
		target := 2 + int(country.UserWeight/12)
		if target > 8 {
			target = 8
		}
		rows := named[country.Code]
		if len(rows) > target {
			target = len(rows)
		}
		for _, ri := range rows {
			row := namedISPTable[ri]
			if _, err := w.addAccessISP(accessAlloc, row.asn, row.name, country,
				row.relUsers*country.UserWeight, tier2s, row.hasTier1, rng); err != nil {
				return err
			}
		}
		for i := len(rows); i < target; i++ {
			share := 1.0 / float64(i+2) // Zipf-flavoured tail
			if len(rows) > 0 {
				// Synthetic fill behind named ISPs stays smaller than the
				// smallest named one, so "top-N by measurements" returns
				// the ISPs the paper's case studies name.
				share *= 0.2
			}
			if _, err := w.addAccessISP(accessAlloc, nextAccess,
				fmt.Sprintf("%s ISP %d", country.Code, i+1), country,
				share*country.UserWeight, tier2s,
				rng.Float64() < w.Config.Tier1AttachProb, rng); err != nil {
				return err
			}
			nextAccess++
		}
		w.accessByCountry[country.Code] = w.Registry.AccessIn(country.Code)
	}

	// Intra-continent Tier-2 peering keeps regional public paths short.
	byCont := make(map[geo.Continent][]*asn.AS)
	for _, country := range geo.AllCountries() {
		byCont[country.Continent] = append(byCont[country.Continent], w.tier2ByCountry[country.Code]...)
	}
	for _, group := range [][]*asn.AS{byCont[geo.EU], byCont[geo.NA], byCont[geo.SA], byCont[geo.AS], byCont[geo.AF], byCont[geo.OC]} {
		for i := range group {
			for j := i + 1; j < len(group); j++ {
				if rng.Float64() < 0.25 {
					w.Graph.AddPeering(group[i].Number, group[j].Number)
				}
			}
		}
	}
	return nil
}

func (w *World) addAccessISP(alloc *netaddr.Allocator, number asn.Number, name string,
	country geo.Country, users float64, tier2s []*asn.AS, hasTier1 bool, rng *rand.Rand) (*asn.AS, error) {
	p, err := alloc.Allocate(16)
	if err != nil {
		return nil, fmt.Errorf("world: access prefixes: %w", err)
	}
	a := &asn.AS{
		Number: number, Name: name, Type: asn.TypeAccess,
		Country: country.Code, Continent: country.Continent,
		Prefixes: []netaddr.Prefix{p}, Users: users,
	}
	if err := w.Registry.Register(a); err != nil {
		return nil, err
	}
	w.prefixes[a.Number] = p
	w.pops[a.Number] = []PoP{{Loc: country.Centroid, Country: country.Code}}
	// Home transit: always the first national Tier-2, sometimes the
	// second.
	if len(tier2s) > 0 {
		w.Graph.AddTransit(tier2s[0].Number, a.Number)
		if len(tier2s) > 1 && rng.Float64() < 0.5 {
			w.Graph.AddTransit(tier2s[1].Number, a.Number)
		}
	}
	if hasTier1 {
		for _, idx := range w.tier1AffinityFor(country.Code, rng) {
			w.Graph.AddTransit(w.tier1s[idx].Number, a.Number)
		}
	}
	return a, nil
}

// tier1AffinityFor picks which global carriers an eyeball in the given
// country attaches to, honoring the regional affinities the paper's
// case studies report (NTT and TATA for Japan, §6.2).
func (w *World) tier1AffinityFor(country string, rng *rand.Rand) []int {
	want := map[string][]asn.Number{
		"JP": {2914, 6453},
		"KR": {2914, 3491},
		"DE": {1299, 3257},
		"GB": {1273, 3257},
		"UA": {1299, 3356},
		"BH": {6453, 1273},
		"IN": {6453, 3491},
		"US": {3356, 174},
		"CA": {3356, 6461},
		"BR": {3356, 12956},
	}
	if asns, ok := want[country]; ok {
		var idx []int
		for i, t := range w.tier1s {
			for _, n := range asns {
				if t.Number == n {
					idx = append(idx, i)
				}
			}
		}
		return idx
	}
	return pickDistinct(rng, len(w.tier1s), 1+rng.Intn(2))
}

func pickDistinct(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

func (w *World) buildClouds(rng *rand.Rand) error {
	alloc := netaddr.NewAllocator(netaddr.MustParsePrefix("104.0.0.0/8"))
	for _, prov := range w.Inventory.Providers() {
		p, err := alloc.Allocate(12)
		if err != nil {
			return fmt.Errorf("world: cloud prefixes: %w", err)
		}
		a := &asn.AS{
			Number: prov.ASN, Name: prov.Name, Type: asn.TypeCloud,
			Country: "US", Prefixes: []netaddr.Prefix{p},
		}
		if err := w.Registry.Register(a); err != nil {
			return err
		}
		w.prefixes[prov.ASN] = p
		w.providerByASN[prov.ASN] = prov
		w.buildCloudPoPs(prov)
		w.wireCloudTransit(prov, rng)
	}
	// Interconnection decision for every <access ISP, provider> pair.
	for _, country := range geo.AllCountries() {
		for _, isp := range w.accessByCountry[country.Code] {
			for _, prov := range w.Inventory.Providers() {
				kind := w.decideInterconnect(isp, prov, country, rng)
				w.ic[icKey{isp.Number, prov.Code}] = kind
			}
		}
	}
	return nil
}

// buildCloudPoPs places the provider's WAN edge. Hypergiant private
// WANs have PoPs near users worldwide; semi-private WANs cover only
// continents where they operate datacenters; public-backbone providers
// (and Oracle, whose tenant ingress the paper finds mostly public) are
// only present at their datacenters.
func (w *World) buildCloudPoPs(prov *cloud.Provider) {
	regions := w.Inventory.RegionsOf(prov.Code)
	for _, r := range regions {
		w.pops[prov.ASN] = append(w.pops[prov.ASN], PoP{Loc: r.Loc, Country: r.Country})
	}
	hypergiant := prov.Code == "AMZN" || prov.Code == "GCP" || prov.Code == "MSFT" || prov.Code == "LTSL"
	if hypergiant {
		for _, c := range geo.AllCountries() {
			if c.UserWeight >= 4 && !w.hasPoPIn(prov.ASN, c.Code) {
				w.pops[prov.ASN] = append(w.pops[prov.ASN], PoP{Loc: c.Centroid, Country: c.Code})
			}
		}
		return
	}
	if prov.Backbone == cloud.BackboneSemi {
		present := map[geo.Continent]bool{}
		for _, r := range regions {
			present[r.Continent] = true
		}
		// Alibaba's WAN is only openly reachable inside China.
		if prov.HomeCountry != "" {
			present = map[geo.Continent]bool{}
		}
		for _, c := range geo.AllCountries() {
			if (present[c.Continent] && c.UserWeight >= 15 || c.Code == prov.HomeCountry) && !w.hasPoPIn(prov.ASN, c.Code) {
				w.pops[prov.ASN] = append(w.pops[prov.ASN], PoP{Loc: c.Centroid, Country: c.Code})
			}
		}
	}
}

// wireCloudTransit gives every provider a route from the public
// Internet: hypergiants peer settlement-free with all Tier-1s (they are
// transit-free, §2.3); everyone else buys transit from two or three
// carriers.
func (w *World) wireCloudTransit(prov *cloud.Provider, rng *rand.Rand) {
	hypergiant := prov.Code == "AMZN" || prov.Code == "GCP" || prov.Code == "MSFT" || prov.Code == "LTSL"
	if hypergiant {
		for _, t := range w.tier1s {
			w.Graph.AddPeering(prov.ASN, t.Number)
		}
		return
	}
	for _, idx := range pickDistinct(rng, len(w.tier1s), 2+rng.Intn(2)) {
		w.Graph.AddTransit(w.tier1s[idx].Number, prov.ASN)
	}
}

func (w *World) decideInterconnect(isp *asn.AS, prov *cloud.Provider, country geo.Country, rng *rand.Rand) Interconnect {
	if w.Config.ForcePublicPeering {
		// Keep the rng stream aligned with non-ablated builds.
		rng.Float64()
		return IcPublic
	}
	if m, ok := overrideTable[isp.Number]; ok {
		if kind, ok := m[prov.Code]; ok {
			return kind
		}
	}
	pol := prov.PolicyFor(country.Code, country.Continent)
	r := rng.Float64()
	switch {
	case r < pol.Direct:
		ixpProb := w.Config.IXPDirectProb
		if prov.Code == "IBM" {
			ixpProb = 0.35
		}
		if rng.Float64() < ixpProb {
			return IcDirectIXP
		}
		return IcDirect
	case r < pol.Direct+pol.PrivateTransit:
		return IcPrivateTransit
	default:
		return IcPublic
	}
}
