package world

import (
	"testing"

	"repro/internal/asn"
	"repro/internal/cloud"
	"repro/internal/geo"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	w, err := Build(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestBuildDeterministic(t *testing.T) {
	w1 := testWorld(t)
	w2 := testWorld(t)
	if w1.Registry.Len() != w2.Registry.Len() {
		t.Fatalf("AS counts differ: %d vs %d", w1.Registry.Len(), w2.Registry.Len())
	}
	for _, a := range w1.Registry.All() {
		b, ok := w2.Registry.Lookup(a.Number)
		if !ok || b.Name != a.Name || b.Users != a.Users || b.Country != a.Country {
			t.Fatalf("AS %v differs across identical builds", a.Number)
		}
	}
	// Interconnect decisions must also be identical.
	for _, isp := range w1.AccessISPs("DE") {
		for _, code := range w1.Inventory.ProviderCodes() {
			if w1.Interconnect(isp.Number, code) != w2.Interconnect(isp.Number, code) {
				t.Fatalf("interconnect for %v/%s differs across builds", isp.Number, code)
			}
		}
	}
}

func TestEcosystemShape(t *testing.T) {
	w := testWorld(t)
	if got := len(w.Tier1s()); got != 12 {
		t.Errorf("tier1 count = %d", got)
	}
	if got := len(w.IXPs()); got != 16 {
		t.Errorf("ixp count = %d", got)
	}
	// Every country has at least one transit provider and two access
	// ISPs.
	for _, c := range geo.AllCountries() {
		if len(w.Tier2s(c.Code)) == 0 {
			t.Errorf("%s: no tier2", c.Code)
		}
		if len(w.AccessISPs(c.Code)) < 2 {
			t.Errorf("%s: only %d access ISPs", c.Code, len(w.AccessISPs(c.Code)))
		}
	}
	// The paper's named ISPs exist with their real ASNs.
	for _, n := range []asn.Number{3320, 3209, 6805, 6830, 8881, 2516, 2518, 4713, 17511, 17676, 5416, 51375} {
		a, ok := w.Registry.Lookup(n)
		if !ok || a.Type != asn.TypeAccess {
			t.Errorf("named ISP %v missing or wrong type", n)
		}
	}
	// Top-5 German ISPs by users are the named ones.
	de := w.AccessISPs("DE")
	if len(de) < 5 {
		t.Fatalf("DE access = %d", len(de))
	}
	if de[0].Number != 3320 {
		t.Errorf("largest German ISP = %v, want Deutsche Telekom", de[0].Number)
	}
}

func TestEveryISPReachesEveryRegion(t *testing.T) {
	w := testWorld(t)
	regions := w.Inventory.Regions()
	for _, c := range geo.AllCountries() {
		for _, isp := range w.AccessISPs(c.Code) {
			for _, r := range regions {
				path, kind, ok := w.CloudPath(isp, r)
				if !ok {
					t.Fatalf("%v (%s) cannot reach %s", isp.Number, c.Code, r.ID)
				}
				if path[0] != isp.Number || path[len(path)-1] != r.Provider.ASN {
					t.Fatalf("path %v does not span ISP→provider", path)
				}
				switch kind {
				case IcDirect, IcDirectIXP:
					if len(path) != 2 {
						t.Fatalf("direct path has %d ASes: %v", len(path), path)
					}
				case IcPrivateTransit:
					if len(path) != 3 {
						t.Fatalf("private path has %d ASes: %v", len(path), path)
					}
				case IcPublic:
					if len(path) < 3 {
						t.Fatalf("public path too short: %v (isp %v → %s)", path, isp.Number, r.ID)
					}
				}
			}
		}
	}
}

func TestOverridesApplied(t *testing.T) {
	w := testWorld(t)
	cases := []struct {
		isp  asn.Number
		code string
		want Interconnect
	}{
		{3320, "AMZN", IcDirect},         // DT → Amazon direct
		{3209, "DO", IcPublic},           // Vodafone → DO public (Fig 12a)
		{6805, "BABA", IcPublic},         // Telefonica → Alibaba public
		{4713, "AMZN", IcPrivateTransit}, // NTT → Amazon not direct (Fig 13a)
		{2516, "DO", IcPublic},           // DO strictly public in Asia
		{5416, "MSFT", IcDirect},         // Batelco → Microsoft direct (Fig 18a)
		{31452, "GCP", IcDirect},         // ZAIN → Google direct
		{3320, "IBM", IcDirectIXP},       // IBM exchanges at public IXPs
	}
	for _, c := range cases {
		if got := w.Interconnect(c.isp, c.code); got != c.want {
			t.Errorf("interconnect(%v, %s) = %v, want %v", c.isp, c.code, got, c.want)
		}
	}
}

func TestHypergiantsMostlyDirectInEU(t *testing.T) {
	w := testWorld(t)
	for _, code := range []string{"AMZN", "GCP", "MSFT"} {
		direct, total := 0, 0
		for _, c := range geo.CountriesIn(geo.EU) {
			for _, isp := range w.AccessISPs(c.Code) {
				total++
				if k := w.Interconnect(isp.Number, code); k == IcDirect || k == IcDirectIXP {
					direct++
				}
			}
		}
		if frac := float64(direct) / float64(total); frac < 0.55 {
			t.Errorf("%s direct fraction in EU = %.2f, want hypergiant-level", code, frac)
		}
	}
	// Small providers are mostly NOT direct.
	for _, code := range []string{"VLTR", "LIN", "ORCL"} {
		direct, total := 0, 0
		for _, c := range geo.AllCountries() {
			for _, isp := range w.AccessISPs(c.Code) {
				total++
				if k := w.Interconnect(isp.Number, code); k == IcDirect || k == IcDirectIXP {
					direct++
				}
			}
		}
		if frac := float64(direct) / float64(total); frac > 0.25 {
			t.Errorf("%s direct fraction globally = %.2f, want small", code, frac)
		}
	}
}

func TestCarrierAffinity(t *testing.T) {
	w := testWorld(t)
	ntt, _ := w.Registry.Lookup(4713) // NTT OCN (access, Japan)
	kddi, _ := w.Registry.Lookup(2516)
	// Japanese ISP hauling to an Indian DC rides TATA (AS6453); hauling
	// inside Japan rides NTT GIN (AS2914) — §6.2.
	if got := w.CarrierFor(kddi, "IN"); got != 6453 {
		t.Errorf("JP→IN carrier = %v, want TATA AS6453", got)
	}
	if got := w.CarrierFor(kddi, "JP"); got != 2914 {
		t.Errorf("JP→JP carrier = %v, want NTT AS2914", got)
	}
	if got := w.CarrierFor(ntt, "IN"); got != 6453 {
		t.Errorf("NTT→IN carrier = %v, want TATA AS6453", got)
	}
}

func TestCloudIngressSemantics(t *testing.T) {
	w := testWorld(t)
	de, _ := geo.CountryByCode("DE")
	var mumbai *cloud.Region
	for _, r := range w.Inventory.RegionsOf("AMZN") {
		if r.City == "Mumbai" {
			mumbai = r
		}
	}
	if mumbai == nil {
		t.Fatal("no Mumbai region")
	}
	direct := w.CloudIngress(IcDirect, de.Centroid, mumbai)
	public := w.CloudIngress(IcPublic, de.Centroid, mumbai)
	if geo.DistanceKm(de.Centroid, direct) >= geo.DistanceKm(de.Centroid, public) {
		t.Errorf("direct ingress (%v) should be closer to the VP than public ingress (%v)", direct, public)
	}
	if public != mumbai.Loc {
		t.Errorf("public ingress should be the datacenter itself")
	}
	private := w.CloudIngress(IcPrivateTransit, de.Centroid, mumbai)
	if geo.DistanceKm(de.Centroid, private) > geo.DistanceKm(de.Centroid, mumbai.Loc)+1 {
		t.Errorf("private ingress should not overshoot the datacenter")
	}
}

func TestAddressing(t *testing.T) {
	w := testWorld(t)
	dt, _ := w.Registry.Lookup(3320)
	prefix, ok := w.Prefix(3320)
	if !ok {
		t.Fatal("no prefix for DT")
	}
	ip := w.RouterIP(3320, 5)
	if !prefix.Contains(ip) {
		t.Errorf("router IP %v outside prefix %v", ip, prefix)
	}
	if got, ok := w.Registry.ResolveIP(ip); !ok || got != dt {
		t.Errorf("router IP resolves to %v, want DT", got)
	}
	// Probe IPs resolve to the ISP too, and differ per index.
	p0, p1 := w.ProbeIP(3320, 0), w.ProbeIP(3320, 1)
	if p0 == p1 {
		t.Error("probe IPs must differ")
	}
	if got, ok := w.Registry.ResolveIP(p0); !ok || got != dt {
		t.Error("probe IP must resolve to its ISP")
	}
	// Region VM IPs resolve to the provider and are unique per region.
	seen := map[string]bool{}
	for _, r := range w.Inventory.Regions() {
		ip := w.RegionIP(r)
		if ip == 0 {
			t.Fatalf("no VM IP for %s", r.ID)
		}
		if seen[ip.String()] {
			t.Fatalf("duplicate VM IP %v", ip)
		}
		seen[ip.String()] = true
		a, ok := w.Registry.ResolveIP(ip)
		if !ok || a.Number != r.Provider.ASN {
			t.Fatalf("VM IP %v of %s resolves to %v", ip, r.ID, a)
		}
	}
	if w.RouterIP(99999999, 0) != 0 {
		t.Error("unknown AS should yield zero IP")
	}
}

func TestPoPFootprints(t *testing.T) {
	w := testWorld(t)
	// Every country is served by at least two Tier-1s.
	for _, c := range geo.AllCountries() {
		n := 0
		for _, t1 := range w.Tier1s() {
			if w.hasPoPIn(t1.Number, c.Code) {
				n++
			}
		}
		if n < 2 {
			t.Errorf("%s: only %d tier-1 PoPs", c.Code, n)
		}
	}
	// Hypergiants have many more PoPs than their region count; public
	// providers only sit at their datacenters.
	gcp, _ := w.Inventory.Provider("GCP")
	vltr, _ := w.Inventory.Provider("VLTR")
	if len(w.PoPs(gcp.ASN)) <= len(w.Inventory.RegionsOf("GCP")) {
		t.Error("GCP should have edge PoPs beyond its regions")
	}
	if len(w.PoPs(vltr.ASN)) != len(w.Inventory.RegionsOf("VLTR")) {
		t.Error("Vultr PoPs should be exactly its datacenters")
	}
	// Alibaba has in-country presence at home but not in, say, Germany.
	baba, _ := w.Inventory.Provider("BABA")
	if !w.hasPoPIn(baba.ASN, "CN") {
		t.Error("Alibaba must have PoPs in China")
	}
	if w.hasPoPIn(baba.ASN, "BD") {
		t.Error("Alibaba should not have eyeball PoPs outside home/DC countries")
	}
}

func TestNearestPoPAndIXP(t *testing.T) {
	w := testWorld(t)
	de, _ := geo.CountryByCode("DE")
	ix := w.NearestIXP(de.Centroid)
	if ix == nil || ix.Name != "DE-CIX Frankfurt" {
		t.Errorf("nearest IXP to Germany = %v", ix)
	}
	if _, ok := w.IXPByASN(ix.ASN); !ok {
		t.Error("IXPByASN miss")
	}
	if _, ok := w.IXPByASN(12345678); ok {
		t.Error("unknown IXP ASN should miss")
	}
	gcp, _ := w.Inventory.Provider("GCP")
	pop, ok := w.NearestPoP(gcp.ASN, de.Centroid)
	if !ok {
		t.Fatal("no GCP PoP")
	}
	if geo.DistanceKm(de.Centroid, pop.Loc) > 800 {
		t.Errorf("GCP PoP for Germany is %0.f km away", geo.DistanceKm(de.Centroid, pop.Loc))
	}
	if _, ok := w.NearestPoP(987654321, de.Centroid); ok {
		t.Error("unknown AS should have no PoPs")
	}
	isp := w.AccessISPs("DE")[0]
	if got := w.IXPForPeering(isp); got == nil || got.Name != "DE-CIX Frankfurt" {
		t.Errorf("IXPForPeering(DE) = %v", got)
	}
}

func TestUserCoverage(t *testing.T) {
	w := testWorld(t)
	all := map[asn.Number]bool{}
	for _, c := range geo.AllCountries() {
		for _, isp := range w.AccessISPs(c.Code) {
			all[isp.Number] = true
		}
	}
	if cov := w.UserCoverageOf(all); cov < 0.999 {
		t.Errorf("full coverage = %v", cov)
	}
}

func TestPathInflation(t *testing.T) {
	// Undersea-cable shape (§4.3): Egypt reaches Europe on a much lower
	// inflation than South Africa; Bolivia reaches NA at a lower
	// inflation than Brazil.
	if PathInflation("EG", "DE") >= PathInflation("EG", "ZA") {
		t.Error("Egypt→EU should be better provisioned than Egypt→ZA")
	}
	if PathInflation("BO", "US") >= PathInflation("BO", "BR") {
		t.Error("Bolivia→NA should be better provisioned than Bolivia→BR")
	}
	if PathInflation("KE", "ZA") >= PathInflation("EG", "ZA") {
		t.Error("Kenya has direct east-coast cables to ZA")
	}
	// Intra-EU is the best-provisioned region.
	if PathInflation("DE", "GB") >= PathInflation("JP", "IN") {
		t.Error("intra-EU should beat JP→IN")
	}
	// Unknown countries fall back to a sane default.
	if f := PathInflation("ZZ", "QQ"); f != 1.8 {
		t.Errorf("fallback inflation = %v", f)
	}
	if PrivateWANInflation >= PathInflation("DE", "GB") {
		t.Error("private WAN must beat every public path")
	}
}

func TestInterconnectStrings(t *testing.T) {
	if IcDirect.String() != "direct" || IcDirectIXP.String() != "1 IXP" ||
		IcPrivateTransit.String() != "1 AS" || IcPublic.String() != "2+ AS" ||
		Interconnect(9).String() != "?" {
		t.Error("interconnect labels wrong")
	}
}

func TestRouterIPSmallBlocks(t *testing.T) {
	// Regression: IXP peering LANs are /24s; RouterIP must stay inside
	// them for any index instead of panicking.
	w := testWorld(t)
	for _, ix := range w.IXPs() {
		for _, idx := range []int{0, 255, 787, 4095, 1 << 20, -3} {
			ip := w.RouterIP(ix.ASN, idx)
			if ip == 0 {
				t.Fatalf("%s: no router IP", ix.Name)
			}
			if !ix.Prefix.Contains(ip) {
				t.Fatalf("%s: router IP %v escapes %v (idx %d)", ix.Name, ip, ix.Prefix, idx)
			}
		}
	}
}

// TestCrossSeedInvariants builds several worlds and checks the
// structural invariants hold regardless of seed: disjoint prefix
// allocations, sane interconnect policies, full reachability on a
// sample, and PoP placement consistency.
func TestCrossSeedInvariants(t *testing.T) {
	for _, seed := range []int64{2, 17, 123456} {
		w, err := Build(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Prefix disjointness across all ASes.
		type entry struct {
			n asn.Number
			p string
		}
		var prefixes []entry
		for _, a := range w.Registry.All() {
			for _, p := range a.Prefixes {
				prefixes = append(prefixes, entry{a.Number, p.String()})
			}
		}
		seen := map[string]asn.Number{}
		for _, e := range prefixes {
			if other, dup := seen[e.p]; dup {
				t.Fatalf("seed %d: prefix %s announced by %v and %v", seed, e.p, e.n, other)
			}
			seen[e.p] = e.n
		}
		// Sampled reachability: a handful of ISPs reach a handful of
		// regions with kind-consistent path lengths.
		regions := w.Inventory.Regions()
		for _, cc := range []string{"DE", "JP", "BR", "EG"} {
			isps := w.AccessISPs(cc)
			if len(isps) == 0 {
				t.Fatalf("seed %d: no ISPs in %s", seed, cc)
			}
			for _, r := range []int{0, 50, 100, 190} {
				path, kind, ok := w.CloudPath(isps[0], regions[r])
				if !ok {
					t.Fatalf("seed %d: %s unreachable from %s", seed, regions[r].ID, cc)
				}
				switch kind {
				case IcDirect, IcDirectIXP:
					if len(path) != 2 {
						t.Fatalf("seed %d: direct path length %d", seed, len(path))
					}
				case IcPrivateTransit:
					if len(path) != 3 {
						t.Fatalf("seed %d: private path length %d", seed, len(path))
					}
				default:
					if len(path) < 4 {
						t.Fatalf("seed %d: public path %v too short", seed, path)
					}
				}
			}
		}
		// Every AS with a PoP list places its first PoP in a known
		// country.
		for _, a := range w.Registry.All() {
			for _, pop := range w.PoPs(a.Number) {
				if _, ok := geo.CountryByCode(pop.Country); !ok {
					t.Fatalf("seed %d: %v has a PoP in unknown country %q", seed, a.Number, pop.Country)
				}
				if !pop.Loc.Valid() {
					t.Fatalf("seed %d: %v has an invalid PoP location", seed, a.Number)
				}
			}
		}
		// Named case-study overrides hold under every seed.
		if w.Interconnect(3320, "AMZN") != IcDirect || w.Interconnect(2516, "DO") != IcPublic {
			t.Fatalf("seed %d: overrides not applied", seed)
		}
	}
}
